(* hirc — the HIR compiler driver.

     hirc compile design.hir [-o out.v] [--top f] [--no-opt]
         parse (generic textual form), verify, optimize, emit Verilog
     hirc verify design.hir
         run the structural and schedule verifiers, print diagnostics
     hirc print design.hir
         parse and re-print (round-trip check)
     hirc kernels
         list the built-in benchmark kernels
     hirc demo <kernel> [-o out.v] [--no-opt] [--stats]
         compile a built-in kernel and report resources
     hirc pipeline --passes "<spec>" design.hir [-o out.v] [--stats]
         compile with an explicit textual pass pipeline (--list shows
         the available passes)
     hirc batch <files-or-kernels…> [-j N] [--cache-dir D] [--trace t.json]
         compile many designs concurrently through the compilation
         service, with optional persistent caching and Chrome tracing
     hirc sim <kernel> [--cycles N] [--engine compiled|reference]
              [--stats] [--vcd out.vcd] [--hls]
         compile a built-in kernel and run it in the RTL simulator with
         generic inputs; --stats reports the simulator's own counters
         (settles, assigns evaluated vs skipped, fast-path hit rate)

   The end-to-end flow (parse → verify → passes → emit) lives in
   [Hir_driver.Driver]; this file is only the command-line surface. *)

open Hir_ir
open Hir_dialect
open Hir_driver
open Cmdliner

let () = Ops.register ()

let load_module path =
  try Ok (Parser.parse_file path) with
  | Parser.Parse_error (loc, msg) ->
    Error (Printf.sprintf "%s: parse error: %s" (Location.to_string loc) msg)
  | Lexer.Lex_error (loc, msg) ->
    Error (Printf.sprintf "%s: lex error: %s" (Location.to_string loc) msg)
  | Sys_error e -> Error e

let run_verifiers module_op =
  let engine = Diagnostic.Engine.create () in
  (match Verify.verify module_op with
  | Ok () -> ()
  | Error e -> List.iter (Diagnostic.Engine.emit engine) (Diagnostic.Engine.to_list e));
  if not (Diagnostic.Engine.has_errors engine) then
    Verify_schedule.verify_module engine module_op;
  engine

let output_text out text =
  match out with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.eprintf "wrote %s (%d bytes)\n" path (String.length text)

(* Run one job through the compilation service and write its output. *)
let run_job ?cache ?stats ~out job =
  match Driver.compile_job ?cache job with
  | Error e ->
    prerr_endline (Driver.error_to_string e);
    1
  | Ok o ->
    Option.iter (Printf.eprintf "note: %s\n") o.Driver.note;
    (match stats with
    | Some true ->
      List.iter
        (fun (s : Pass.stat) ->
          Printf.eprintf "%-28s %8.3f ms %s\n" s.Pass.pass_name (s.Pass.seconds *. 1000.)
            (if s.Pass.changed then "(changed)" else "");
          List.iter
            (fun (name, n) -> Printf.eprintf "    %-32s %6d\n" name n)
            s.Pass.counters)
        o.Driver.pass_stats
    | _ -> ());
    output_text out o.Driver.verilog;
    0

(* ----------------------------- commands --------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input .hir file")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output file")

let top_arg =
  Arg.(value & opt (some string) None & info [ "top" ] ~docv:"FUNC" ~doc:"Top-level function")

let no_opt_arg =
  Arg.(value & flag & info [ "no-opt" ] ~doc:"Skip the optimization pipeline")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Persist compiled output in a content-addressed cache under $(docv)")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"OUT.json"
        ~doc:"Write per-stage timing spans as Chrome trace JSON to $(docv)")

let compile_cmd =
  let run file out top no_opt =
    let pipeline = Pipeline.default ~optimize:(not no_opt) in
    run_job ~out (Driver.job_of_file ?top ~pipeline file)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile textual HIR to Verilog")
    Term.(const run $ file_arg $ out_arg $ top_arg $ no_opt_arg)

let verify_cmd =
  let run file =
    match load_module file with
    | Error e ->
      prerr_endline e;
      1
    | Ok m ->
      let engine = run_verifiers m in
      if Diagnostic.Engine.has_errors engine then begin
        prerr_endline (Diagnostic.Engine.to_string engine);
        1
      end
      else begin
        Printf.printf "%s: all functions verify\n" file;
        0
      end
  in
  Cmd.v (Cmd.info "verify" ~doc:"Verify a textual HIR design") Term.(const run $ file_arg)

let print_cmd =
  let pretty_arg =
    Arg.(value & flag & info [ "pretty" ] ~doc:"Use the paper-style custom syntax")
  in
  let run file out pretty =
    match load_module file with
    | Error e ->
      prerr_endline e;
      1
    | Ok m ->
      if pretty then output_text out (Pretty.module_to_string m)
      else output_text out (Printer.op_to_string m ^ "\n");
      0
  in
  Cmd.v
    (Cmd.info "print" ~doc:"Parse and re-print (round-trip, or --pretty)")
    Term.(const run $ file_arg $ out_arg $ pretty_arg)

let kernels_cmd =
  let run () =
    List.iter
      (fun k ->
        Printf.printf "%-14s %s\n" k.Hir_kernels.Kernels.name
          k.Hir_kernels.Kernels.description)
      Hir_kernels.Kernels.all;
    0
  in
  Cmd.v
    (Cmd.info "kernels" ~doc:"List the built-in benchmark kernels")
    Term.(const run $ const ())

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print per-pass statistics / resource estimates")

let demo_cmd =
  let kernel_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel name")
  in
  let run name out no_opt stats =
    match Hir_kernels.Kernels.find name with
    | None ->
      Printf.eprintf "unknown kernel %s (try `hirc kernels`)\n" name;
      1
    | Some k ->
      let pipeline = Pipeline.default ~optimize:(not no_opt) in
      let job = Driver.job_of_builder ~pipeline ~name k.Hir_kernels.Kernels.build in
      (match Driver.compile_job job with
      | Error e ->
        prerr_endline (Driver.error_to_string e);
        1
      | Ok o ->
        if stats then begin
          List.iter
            (fun (s : Pass.stat) ->
              Printf.eprintf "%-28s %8.3f ms %s\n" s.Pass.pass_name
                (s.Pass.seconds *. 1000.)
                (if s.Pass.changed then "(changed)" else "");
              List.iter
                (fun (cname, n) -> Printf.eprintf "    %-32s %6d\n" cname n)
                s.Pass.counters)
            o.Driver.pass_stats;
          Printf.eprintf "%s: %s\n" name
            (Format.asprintf "%a" Hir_resources.Model.pp o.Driver.usage)
        end;
        output_text out o.Driver.verilog;
        0)
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Compile a built-in kernel")
    Term.(const run $ kernel_arg $ out_arg $ no_opt_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* hirc pipeline                                                       *)

let passes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "passes" ] ~docv:"SPEC"
        ~doc:
          "Comma-separated pass pipeline, e.g. \
           'canonicalize,precision-opt,unroll,delay-elim'. Stages take options in \
           braces: 'retime{repeat=2}'.")

let pipeline_cmd =
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List the available passes and exit")
  in
  let file_opt_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input .hir file")
  in
  let run passes file out top stats cache_dir list =
    if list then begin
      List.iter
        (fun (name, descr) -> Printf.printf "%-20s %s\n" name descr)
        (Pipeline.available_passes ());
      0
    end
    else
      match (passes, file) with
      | None, _ ->
        prerr_endline "pipeline: --passes SPEC is required (or --list)";
        1
      | _, None ->
        prerr_endline "pipeline: an input FILE is required (or --list)";
        1
      | Some spec_src, Some file -> (
        match Pipeline.parse spec_src with
        | Error e ->
          Printf.eprintf "invalid pipeline spec: %s\n" e;
          1
        | Ok pipeline ->
          Printf.eprintf "pipeline: %s\n" (Pipeline.to_string pipeline);
          let cache = Option.map (fun dir -> Cache.create ~dir) cache_dir in
          run_job ?cache ~stats ~out (Driver.job_of_file ?top ~pipeline file))
  in
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Compile with an explicit textual pass pipeline")
    Term.(
      const run $ passes_arg $ file_opt_arg $ out_arg $ top_arg $ stats_arg
      $ cache_dir_arg $ list_arg)

(* ------------------------------------------------------------------ *)
(* hirc fuzz                                                           *)

let fuzz_cmd =
  let iterations_arg =
    Arg.(
      value & pos 0 int 10000
      & info [] ~docv:"N" ~doc:"Number of fuzz iterations (default 10000)")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed (default 1)")
  in
  let full_arg =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Also run the pass pipeline, codegen and the Verilog printer on inputs \
             that verify (slower; default fuzzes parse + verify only)")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some dir) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Add every .hir file under $(docv) to the seed corpus")
  in
  let crash_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "crash-dir" ] ~docv:"DIR"
          ~doc:"Write each crashing input to $(docv)/crash-<i>.hir")
  in
  let dump_last_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-last" ] ~docv:"FILE"
          ~doc:
            "Before each iteration, overwrite $(docv) with the input about to run — \
             if the fuzzer hangs or is killed, $(docv) holds the offending input")
  in
  let run iterations seed full corpus_dir crash_dir dump_last =
    let corpus =
      Hir_fuzz.Corpus.default ()
      @ (match corpus_dir with Some d -> Hir_fuzz.Corpus.load_dir d | None -> [])
    in
    let mode = if full then Hir_fuzz.Fuzz.Full else Hir_fuzz.Fuzz.Frontend in
    let on_crash (c : Hir_fuzz.Fuzz.crash) =
      Printf.eprintf "CRASH at iteration %d: %s\n" c.Hir_fuzz.Fuzz.crash_iteration
        c.Hir_fuzz.Fuzz.crash_exn;
      match crash_dir with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        let path =
          Filename.concat dir
            (Printf.sprintf "crash-%d.hir" c.Hir_fuzz.Fuzz.crash_iteration)
        in
        let oc = open_out_bin path in
        output_string oc c.Hir_fuzz.Fuzz.crash_input;
        close_out oc;
        Printf.eprintf "  input saved to %s\n" path
    in
    let on_input ~iteration:_ input =
      match dump_last with
      | None -> ()
      | Some path ->
        let oc = open_out_bin path in
        output_string oc input;
        close_out oc
    in
    let stats = Hir_fuzz.Fuzz.run ~mode ~seed ~on_crash ~on_input ~iterations corpus in
    Printf.printf "fuzz (%s, seed %d): %s\n"
      (if full then "full" else "frontend")
      seed
      (Hir_fuzz.Fuzz.stats_to_string stats);
    if stats.Hir_fuzz.Fuzz.crashes = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Mutation-fuzz the textual frontend; any input that produces a \
          non-diagnostic crash is reported (and the run exits 1)")
    Term.(
      const run $ iterations_arg $ seed_arg $ full_arg $ corpus_arg $ crash_dir_arg
      $ dump_last_arg)

(* ------------------------------------------------------------------ *)
(* hirc sim                                                            *)

module Emit = Hir_codegen.Emit
module Harness = Hir_rtl.Harness

let sim_cmd =
  let kernel_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"KERNEL" ~doc:"Kernel name (see `hirc kernels`)")
  in
  let cycles_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cycles" ] ~docv:"N"
          ~doc:"Clock cycles to run (default: the interpreter's latency)")
  in
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("compiled", `Compiled); ("reference", `Reference) ]) `Compiled
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Simulation engine: $(b,compiled) (default) or $(b,reference)")
  in
  let vcd_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"OUT.vcd" ~doc:"Dump a VCD waveform to $(docv)")
  in
  let hls_arg =
    Arg.(
      value & flag
      & info [ "hls" ]
          ~doc:
            "Simulate the HLS-compiled variant from the evaluation suite instead of \
             the native HIR kernel")
  in
  let run name cycles engine stats vcd_path use_hls =
    let build_r =
      if use_hls then
        match Hir_hls.Suite.find name with
        | None ->
          Error
            (Printf.sprintf "unknown HLS suite kernel %s (one of: %s)" name
               (String.concat ", " (List.map fst (Hir_hls.Suite.all ()))))
        | Some source ->
          Ok
            (fun () ->
              let c = Hir_hls.Compiler.compile source in
              (c.Hir_hls.Compiler.hls_module, c.Hir_hls.Compiler.hls_func))
      else
        match Hir_kernels.Kernels.find name with
        | None -> Error (Printf.sprintf "unknown kernel %s (try `hirc kernels`)" name)
        | Some k -> Ok k.Hir_kernels.Kernels.build
    in
    match build_r with
    | Error e ->
      prerr_endline e;
      1
    | Ok build ->
      (* Generic inputs derived from the compiled interface: zeroed
         scalars, zero-filled tensors on readable memref ports, a
         capture buffer on write-only ports. *)
      let emitted =
        let m, f = build () in
        if use_hls then Emit.compile ~module_op:m ~top:f ()
        else Emit.compile ~optimize:true ~module_op:m ~top:f ()
      in
      let inputs =
        List.map
          (fun arg ->
            match arg with
            | Emit.Ifc_scalar (_, w, _) -> (Harness.Scalar (Bitvec.zero w), Interp.Scalar (Bitvec.zero w))
            | Emit.Ifc_mem mi -> (
              let info = mi.Emit.mi_info in
              match info.Types.port with
              | Types.Write -> (Harness.Out_tensor, Interp.Out_tensor)
              | _ ->
                let n = Types.num_elements info in
                let zeros = Array.init n (fun _ -> Bitvec.zero mi.Emit.mi_elem_width) in
                (Harness.Tensor zeros, Interp.Tensor (Array.copy zeros))))
          emitted.Emit.top_iface.Emit.ifc_args
      in
      let harness_inputs = List.map fst inputs in
      let cycles =
        match cycles with
        | Some n -> n
        | None ->
          (* compile mutated the module, so rebuild for the interpreter. *)
          let m, f = build () in
          let r, _ = Interp.run ~module_op:m ~func:f (List.map snd inputs) in
          r.Interp.cycles
      in
      let (result, _agents), counters =
        Pass.with_counters (fun () ->
            Harness.run ~engine ?vcd_path ~emitted ~inputs:harness_inputs ~cycles ())
      in
      Printf.printf "%s: %d cycles on the %s engine, %d assertion failure(s)\n" name
        result.Harness.cycles_run
        (match engine with `Compiled -> "compiled" | `Reference -> "reference")
        (List.length result.Harness.failures);
      List.iter
        (fun (fl : Hir_rtl.Sim.assertion_failure) ->
          Printf.printf "  assertion at cycle %d: %s\n" fl.Hir_rtl.Sim.at_cycle
            fl.Hir_rtl.Sim.message)
        result.Harness.failures;
      List.iter
        (fun (rname, v) -> Printf.printf "  result %s = %s\n" rname (Bitvec.to_string v))
        result.Harness.output_values;
      if stats then
        List.iter (fun (cname, n) -> Printf.printf "  %-28s %10d\n" cname n) counters;
      if result.Harness.failures = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Run a built-in kernel in the RTL simulator")
    Term.(const run $ kernel_arg $ cycles_arg $ engine_arg $ stats_arg $ vcd_arg $ hls_arg)

(* ------------------------------------------------------------------ *)
(* hirc batch                                                          *)

let batch_cmd =
  let inputs_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"INPUT"
          ~doc:"A .hir file or the name of a built-in kernel (see `hirc kernels`)")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int (Scheduler.default_workers ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Number of worker domains")
  in
  let all_kernels_arg =
    Arg.(value & flag & info [ "kernels" ] ~doc:"Also compile every built-in kernel")
  in
  let out_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output-dir" ] ~docv:"DIR" ~doc:"Write one $(docv)/<name>.v per input")
  in
  let run inputs workers all_kernels out_dir cache_dir trace_out no_opt passes =
    let pipeline_r =
      match passes with
      | None -> Ok (Pipeline.default ~optimize:(not no_opt))
      | Some src -> Pipeline.parse src
    in
    match pipeline_r with
    | Error e ->
      Printf.eprintf "invalid pipeline spec: %s\n" e;
      1
    | Ok pipeline -> (
      let kernel_job k =
        Driver.job_of_builder ~pipeline ~name:k.Hir_kernels.Kernels.name
          k.Hir_kernels.Kernels.build
      in
      let job_of_input input =
        if Sys.file_exists input then Ok (Driver.job_of_file ~pipeline input)
        else
          match Hir_kernels.Kernels.find input with
          | Some k -> Ok (kernel_job k)
          | None ->
            Error (Printf.sprintf "%s: neither a file nor a built-in kernel" input)
      in
      let jobs_r =
        List.fold_left
          (fun acc input ->
            match (acc, job_of_input input) with
            | Error e, _ | _, Error e -> Error e
            | Ok jobs, Ok j -> Ok (j :: jobs))
          (Ok []) inputs
        |> Result.map List.rev
      in
      match jobs_r with
      | Error e ->
        prerr_endline e;
        1
      | Ok file_jobs ->
        let jobs =
          file_jobs
          @ (if all_kernels then List.map kernel_job Hir_kernels.Kernels.all else [])
        in
        if jobs = [] then begin
          prerr_endline "batch: nothing to compile (give files, kernel names or --kernels)";
          1
        end
        else begin
          let cache = Option.map (fun dir -> Cache.create ~dir) cache_dir in
          let result = Driver.batch ?cache ~workers (Array.of_list jobs) in
          let failed = ref 0 in
          Array.iter
            (fun outcome ->
              match outcome with
              | Error e ->
                incr failed;
                Printf.printf "FAIL %s\n%s\n" e.Driver.err_job
                  (Driver.error_to_string e)
              | Ok o ->
                Option.iter (Printf.eprintf "note: %s: %s\n" o.Driver.job_name) o.Driver.note;
                (match out_dir with
                | Some dir ->
                  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
                  let base =
                    Filename.remove_extension (Filename.basename o.Driver.job_name)
                  in
                  let path = Filename.concat dir (base ^ ".v") in
                  let oc = open_out path in
                  output_string oc o.Driver.verilog;
                  close_out oc
                | None -> ());
                Printf.printf "ok   %-24s top=%-18s %8.2f ms%s\n" o.Driver.job_name
                  o.Driver.top_name (o.Driver.seconds *. 1000.)
                  (if o.Driver.from_cache then "  (cached)" else ""))
            result.Driver.outcomes;
          let hits, misses =
            match cache with Some c -> (Cache.hits c, Cache.misses c) | None -> (0, 0)
          in
          Printf.printf
            "batch: %d jobs, %d failed, %d workers, %.2f ms wall%s\n"
            (Array.length result.Driver.outcomes)
            !failed workers
            (result.Driver.wall_seconds *. 1000.)
            (if cache <> None then Printf.sprintf ", cache %d hits / %d misses" hits misses
             else "");
          (match trace_out with
          | Some path ->
            Trace.write_chrome_json path result.Driver.traces;
            Printf.eprintf "wrote %s\n" path
          | None -> ());
          if !failed > 0 then 1 else 0
        end)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Compile many designs concurrently through the compilation service")
    Term.(
      const run $ inputs_arg $ jobs_arg $ all_kernels_arg $ out_dir_arg $ cache_dir_arg
      $ trace_arg $ no_opt_arg $ passes_arg)

let () =
  let doc = "HIR: an MLIR-style IR for hardware accelerator description" in
  let info = Cmd.info "hirc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            compile_cmd; verify_cmd; print_cmd; kernels_cmd; demo_cmd; pipeline_cmd;
            fuzz_cmd; sim_cmd; batch_cmd;
          ]))
