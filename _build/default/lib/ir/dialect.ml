(* Dialect and operation registry.

   Dialects register their operations with a verifier and trait set;
   generic infrastructure (the verifier, the pass manager, Table 2 of
   the paper) consults the registry rather than hard-coding op names. *)

type trait =
  | Terminator  (** Op terminates its enclosing block (yield, return). *)
  | Pure  (** No side effects; eligible for CSE and DCE. *)
  | Commutative
  | Scheduled  (** Op carries an explicit (time, offset) schedule. *)

type op_def = {
  od_name : string;  (* fully qualified, e.g. "hir.for" *)
  od_summary : string;
  od_traits : trait list;
  od_verify : Ir.op -> Diagnostic.Engine.t -> unit;
}

type dialect = {
  d_name : string;
  d_description : string;
}

let dialects : (string, dialect) Hashtbl.t = Hashtbl.create 8
let op_defs : (string, op_def) Hashtbl.t = Hashtbl.create 64

let no_verify (_ : Ir.op) (_ : Diagnostic.Engine.t) = ()

let register_dialect ~name ~description =
  Hashtbl.replace dialects name { d_name = name; d_description = description }

let register_op ?(summary = "") ?(traits = []) ?(verify = no_verify) name =
  Hashtbl.replace op_defs name
    { od_name = name; od_summary = summary; od_traits = traits; od_verify = verify }

let lookup_op name = Hashtbl.find_opt op_defs name

let op_has_trait name trait =
  match lookup_op name with
  | Some def -> List.mem trait def.od_traits
  | None -> false

let registered_ops () =
  Hashtbl.fold (fun _ def acc -> def :: acc) op_defs []
  |> List.sort (fun a b -> String.compare a.od_name b.od_name)

let registered_dialects () =
  Hashtbl.fold (fun _ d acc -> d :: acc) dialects []
  |> List.sort (fun a b -> String.compare a.d_name b.d_name)

let dialect_of_op_name name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> ""
