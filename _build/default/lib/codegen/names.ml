(* Verilog-legal, unique signal naming for one generated module. *)

type t = { used : (string, unit) Hashtbl.t }

let create () =
  let t = { used = Hashtbl.create 64 } in
  (* Reserved ports and keywords. *)
  List.iter
    (fun n -> Hashtbl.replace t.used n ())
    [
      "clk"; "t_start"; "module"; "endmodule"; "input"; "output"; "wire";
      "reg"; "assign"; "always"; "begin"; "end"; "if"; "else"; "case"; "for";
      "posedge"; "negedge"; "signed";
    ];
  t

let sanitize s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    s;
  let s = Buffer.contents buf in
  if s = "" then "sig"
  else
    match s.[0] with
    | '0' .. '9' -> "s" ^ s
    | _ -> s

let fresh t base =
  let base = sanitize base in
  if not (Hashtbl.mem t.used base) then begin
    Hashtbl.replace t.used base ();
    base
  end
  else begin
    let rec go k =
      let candidate = Printf.sprintf "%s_%d" base k in
      if Hashtbl.mem t.used candidate then go (k + 1)
      else begin
        Hashtbl.replace t.used candidate ();
        candidate
      end
    in
    go 1
  end

let value_base v =
  match Hir_ir.Ir.Value.hint v with
  | Some h -> h
  | None -> Printf.sprintf "v%d" (Hir_ir.Ir.Value.id v)
