(* A fixed-size multicore worker pool on OCaml 5 domains.

   [map_ordered ~workers ~f jobs] applies [f] to every job and returns
   the results *in input order*, regardless of which worker finished
   first: workers pull indices from a shared atomic counter and write
   into their own slot of a pre-sized results array (each slot has
   exactly one writer, so no further synchronization is needed).

   [workers = 1] runs inline in the calling domain — this is the
   reference sequential schedule the batch tests compare parallel runs
   against.  Exceptions escaping [f] are captured per job (with their
   backtraces) and re-raised in the caller after all workers have
   joined, so one poisoned job cannot leave domains running unjoined;
   when several jobs raise, all of them are reported via
   [Job_failures] instead of silently keeping only the first slot
   scanned.

   Degradation: spawning a worker domain can itself fail (resource
   exhaustion, or an injected "worker.spawn" fault).  A failed spawn is
   reported through [on_spawn_failure] and the pool simply runs with
   the domains that did start; if none did, the calling domain runs the
   whole batch inline.  Jobs are never lost to a spawn failure. *)

let default_workers () = max 1 (Domain.recommended_domain_count () - 1)

(* Raised when two or more jobs raised: (job index, exception) pairs in
   job order.  A single raising job re-raises its own exception with
   the original backtrace. *)
exception Job_failures of (int * exn) list

let () =
  Printexc.register_printer (function
    | Job_failures failures ->
      Some
        (Printf.sprintf "Scheduler.Job_failures [%s]"
           (String.concat "; "
              (List.map
                 (fun (i, e) -> Printf.sprintf "job %d: %s" i (Printexc.to_string e))
                 failures)))
    | _ -> None)

type 'b slot = Empty | Value of 'b | Raised of exn * Printexc.raw_backtrace

let map_ordered ?(workers = 1) ?(on_spawn_failure = fun (_ : exn) -> ()) ~f jobs =
  let n = Array.length jobs in
  let results = Array.make n Empty in
  let run_one i =
    results.(i) <-
      (try Value (f i jobs.(i))
       with e -> Raised (e, Printexc.get_raw_backtrace ()))
  in
  if workers <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      run_one i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_one i;
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.filter_map
        (fun _ ->
          match
            Faults.point "worker.spawn";
            Domain.spawn worker
          with
          | d -> Some d
          | exception e ->
            on_spawn_failure e;
            None)
        (List.init (min workers n) Fun.id)
    in
    (* Last rung of the ladder: no worker could start, so degrade to
       inline sequential execution rather than dropping the batch. *)
    if domains = [] then worker () else List.iter Domain.join domains
  end;
  let raised = ref [] in
  Array.iteri
    (fun i slot ->
      match slot with
      | Raised (e, bt) -> raised := (i, e, bt) :: !raised
      | Value _ | Empty -> ())
    results;
  match List.rev !raised with
  | [] ->
    Array.map
      (function Value v -> v | Raised _ | Empty -> assert false)
      results
  | [ (_, e, bt) ] -> Printexc.raise_with_backtrace e bt
  | many -> raise (Job_failures (List.map (fun (i, e, _) -> (i, e)) many))
