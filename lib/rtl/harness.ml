(* Testbench harness: runs a compiled HIR design in the RTL simulator
   with behavioural memory agents standing in for the external memory
   interfaces (the paper's "input/output memory interface").

   Each external memref port is served with 1-cycle read latency:
   addresses presented with rd_en at cycle T return data at T+1; writes
   presented at T are visible to reads from T+1 on — the same semantics
   as the HIR interpreter's memory model, which is what makes the
   codegen-vs-interpreter equivalence tests meaningful. *)

open Hir_dialect
module Emit = Hir_codegen.Emit

type input =
  | Scalar of Bitvec.t
  | Tensor of Bitvec.t array
  | Out_tensor

type agent = {
  ag_iface : Emit.mem_iface;
  ag_tensor : Bitvec.t option array;  (* linear row-major; None = uninitialized *)
  ag_linear : (int * int) -> int option;  (* (bank, addr) -> linear index *)
  mutable ag_pending : (string * Bitvec.t) list;  (* data port -> value to drive next cycle *)
}

let build_agent (mi : Emit.mem_iface) init =
  let info = mi.Emit.mi_info in
  let n = Hir_dialect.Types.num_elements info in
  let depth = Hir_dialect.Types.bank_depth info in
  let table = Hashtbl.create n in
  List.iter
    (fun (idx, bank, addr) ->
      let linear =
        List.fold_left2 (fun acc d i -> (acc * d.Types.size) + i) 0 info.Types.dims idx
      in
      Hashtbl.replace table ((bank * depth) + addr) linear)
    (Types.layout info);
  {
    ag_iface = mi;
    ag_tensor =
      (match init with
      | Some values -> Array.map Option.some values
      | None -> Array.make n None);
    ag_linear = (fun (bank, addr) -> Hashtbl.find_opt table ((bank * depth) + addr));
    ag_pending = [];
  }

let agent_tensor ag = ag.ag_tensor

(* Drive data inputs captured last cycle. *)
let agent_drive ag sim =
  List.iter (fun (port, v) -> Sim.set_input sim port v) ag.ag_pending;
  ag.ag_pending <- []

(* Observe settled outputs: capture reads (respond next cycle), apply
   writes (visible next cycle). *)
let agent_observe ag sim =
  let tensor = ag.ag_tensor in
  Array.iteri
    (fun b (names : Emit.bank_names) ->
      (match names.Emit.bn_rd with
      | Some (en, addr, data) ->
        if not (Bitvec.is_zero (Sim.peek sim en)) then begin
          let a = Bitvec.to_int (Sim.peek sim addr) in
          let value =
            match ag.ag_linear (b, a) with
            | Some linear -> (
              match tensor.(linear) with
              | Some v -> v
              | None -> Bitvec.zero ag.ag_iface.Emit.mi_elem_width
                (* uninitialized read: UB in HIR; the interpreter
                   rejects it, the RTL agent returns zeros *))
            | None -> Bitvec.zero ag.ag_iface.Emit.mi_elem_width
          in
          ag.ag_pending <- (data, value) :: ag.ag_pending
        end
      | None -> ());
      match names.Emit.bn_wr with
      | Some (en, addr, data) ->
        if not (Bitvec.is_zero (Sim.peek sim en)) then begin
          let a = Bitvec.to_int (Sim.peek sim addr) in
          match ag.ag_linear (b, a) with
          | Some linear -> tensor.(linear) <- Some (Sim.peek sim data)
          | None -> ()
        end
      | None -> ())
    ag.ag_iface.Emit.mi_banks

type run_result = {
  failures : Sim.assertion_failure list;
  cycles_run : int;
  output_values : (string * Bitvec.t) list;  (* scalar results at the end *)
  engine_used : [ `Compiled | `Reference ];
      (* the engine that actually produced this result — [`Reference]
         with [~engine:`Compiled] means the degradation ladder fired *)
  sim_stats : Sim.stats;
}

let run_once ?(extra_cycles = 8) ~engine ?vcd_path ~(emitted : Emit.emitted)
    ~inputs ~cycles () =
  let flat = Flatten.flatten emitted.Emit.design in
  let sim = Sim.create ~engine flat in
  let vcd = Option.map (fun path -> Vcd.create ~path sim) vcd_path in
  let args = emitted.Emit.top_iface.Emit.ifc_args in
  if List.length args <> List.length inputs then
    failwith "harness: input count mismatch";
  let agents =
    List.map2
      (fun arg input ->
        match (arg, input) with
        | Emit.Ifc_scalar (name, w, _), Scalar v ->
          Sim.set_input sim name (Bitvec.resize ~width:w v);
          None
        | Emit.Ifc_mem mi, Tensor init -> Some (build_agent mi (Some init))
        | Emit.Ifc_mem mi, Out_tensor -> Some (build_agent mi None)
        | _ -> failwith "harness: input does not match the interface")
      args inputs
  in
  let agents = List.filter_map (fun x -> x) agents in
  let total = cycles + extra_cycles in
  for c = 0 to total - 1 do
    Sim.set_input sim "t_start" (Bitvec.of_bool (c = 0));
    List.iter (fun ag -> agent_drive ag sim) agents;
    Sim.settle_only sim;
    Option.iter (fun v -> Vcd.sample v sim) vcd;
    List.iter (fun ag -> agent_observe ag sim) agents;
    Sim.clock sim
  done;
  Sim.settle_only sim;
  Option.iter Vcd.close vcd;
  let output_values =
    List.map
      (fun (name, _, _) -> (name, Sim.peek sim name))
      emitted.Emit.top_iface.Emit.ifc_results
  in
  Sim.record_stats sim;
  let result =
    {
      failures = Sim.failures sim;
      cycles_run = total;
      output_values;
      engine_used = engine;
      sim_stats = Sim.stats sim;
    }
  in
  (result, agents)

(* Degradation ladder: an internal [Sim_error] from the compiled engine
   (a compilation bug, or an injected "sim.settle" fault) falls back to
   a full re-run on the reference tree walker — slower, but the
   executable specification.  The fallback is recorded through
   [Pass.record_counter], so `hirc sim --stats` and Chrome traces show
   "sim.fallback_reference" instead of degrading silently.  A
   [Sim_error] from the reference engine itself propagates: there is no
   lower rung. *)
let run ?extra_cycles ?(engine = `Compiled) ?vcd_path ~emitted ~inputs ~cycles () =
  match run_once ?extra_cycles ~engine ?vcd_path ~emitted ~inputs ~cycles () with
  | result -> result
  | exception Sim.Sim_error _ when engine = `Compiled ->
    Hir_ir.Pass.record_counter "sim.fallback_reference";
    run_once ?extra_cycles ~engine:`Reference ?vcd_path ~emitted ~inputs ~cycles ()

(* Snapshot of the [i]-th memref argument after a run (memref args
   only, in interface order). *)
let nth_tensor agents i = agent_tensor (List.nth agents i)
