(* Content-addressed compilation cache with a keyed fingerprint chain.

   The cache holds five *kinds* of entry, one per memoization boundary
   of the staged compile flow in [Driver]:

     - [Job]  — the legacy all-or-nothing entry: the final Verilog of a
       whole job, keyed on Digest(version ⊕ pipeline ⊕ top selector ⊕
       raw source text).  The fastest possible hit: no parsing at all.
     - [Src]  — the *normalized* module text (print∘parse fixed point)
       keyed on the raw source text.  A hit proves the source parsed
       and verified before, so the verify stage is skipped.
     - [Fn]   — one function's optimized IR snapshot, keyed on its
       *cone hash*: the function's normalized printed form plus the
       (recursive) hashes of its callees, plus the pass-pipeline spec.
     - [Vmod] — one function's emitted Verilog module text plus its
       inclusive resource usage, keyed on the same cone hash.  A hit
       skips that function's optimize *and* emit stages.
     - [Link] — the final linked Verilog of a design, keyed on the top
       function's cone hash.  A hit means every function of the design
       is unchanged, however much the rest of the source file moved
       around (comments, sibling kernels): the job is re-linked from
       cache without optimizing or emitting anything.

   Editing one kernel of an 8-kernel module therefore invalidates that
   kernel's Fn/Vmod/Link tail only; the 7 untouched kernels re-link
   from their Link entries and the edited one reuses every callee's
   Fn/Vmod entries below the edit.

   Integrity (unchanged from the single-kind cache): the cache trusts
   nothing it reads back.  Every hit re-digests the payload against the
   digest recorded in the sidecar; a truncated, bit-flipped or
   unparseable entry is *quarantined* (moved to [<dir>/quarantine/],
   collision-suffixed so forensic copies are never overwritten) and
   reported as [Corrupt], which the driver treats as a
   miss-plus-recompute — a damaged cache can cost time, never wrong
   Verilog.  `hirc cache --verify` runs the same check over every
   entry offline through a side-effect-free probe (the runtime
   hit/miss counters are not perturbed), and `--prune` empties the
   quarantine and removes stale temp files.

   Writes go through a unique temp file followed by [Sys.rename], which
   is atomic on POSIX: concurrent workers (or concurrent hirc
   processes) racing to fill the same entry simply last-write-win with
   identical content, and readers never observe a partial entry.  A
   write that fails midway unlinks its temp file.  Counters are atomics
   for the same reason.

   Eviction: with a byte budget ([create ?budget_bytes], `hirc
   --cache-budget`), the cache evicts least-recently-used entries.
   Every hit touches the payload's mtime ([Unix.utimes]), so file
   mtimes *are* the LRU order — no separate index to corrupt, and the
   order survives across processes.  When a store pushes the estimated
   population over budget, a sweep walks the shards, sorts entries
   oldest-first (ties broken by key for determinism) and removes
   payload+sidecar pairs until the population fits.  The quarantine is
   never part of the budget or the sweep.

   Layout: entries are sharded into 256 subdirectories by the first two
   hex digits of the key ([<dir>/ab/<key>.v]) — a flat directory with
   thousands of entries makes every lookup and readdir pay for the
   whole population.  Entries at the root are the pre-shard layout;
   [verify] retires them to the quarantine. *)

type kind = Job | Link | Src | Fn | Vmod

let kinds = [ Job; Link; Src; Fn; Vmod ]

let kind_to_string = function
  | Job -> "job"
  | Link -> "link"
  | Src -> "src"
  | Fn -> "fn"
  | Vmod -> "vmod"

let kind_of_string = function
  | "job" -> Some Job
  | "link" -> Some Link
  | "src" -> Some Src
  | "fn" -> Some Fn
  | "vmod" -> Some Vmod
  | _ -> None

(* Payload file extension per kind.  [Job] keeps the historical [.v]
   so pre-existing tooling (and the store-failure tests) still point at
   the right file. *)
let kind_ext = function
  | Job -> ".v"
  | Link -> ".lnk"
  | Src -> ".src"
  | Fn -> ".fn"
  | Vmod -> ".vm"

let kind_index = function Job -> 0 | Link -> 1 | Src -> 2 | Fn -> 3 | Vmod -> 4

type kind_stat = { k_hits : int; k_misses : int; k_stores : int }

type t = {
  dir : string;
  budget_bytes : int option;
  bytes : int Atomic.t;  (* estimated payload+sidecar population *)
  khits : int Atomic.t array;  (* per kind, indexed by [kind_index] *)
  kmisses : int Atomic.t array;
  kstores : int Atomic.t array;
  corrupt : int Atomic.t;  (* entries quarantined by lookups, all kinds *)
  faults : int Atomic.t;  (* read/write IO failures survived, all kinds *)
  evictions : int Atomic.t;  (* entries removed by the LRU sweep *)
}

(* Bump whenever the emitted Verilog or the meta format changes.
   (v2: digest line in the sidecar; v3: sharded directory layout;
   v4: staged per-function compilation and multi-kind entries.) *)
let driver_version = "hir-driver/5"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let quarantine_dir t = Filename.concat t.dir "quarantine"

(* The 2-hex shard subdirectories that actually exist. *)
let shards t =
  let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') in
  Sys.readdir t.dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f = 2
         && is_hex f.[0] && is_hex f.[1]
         && Sys.is_directory (Filename.concat t.dir f))
  |> List.sort compare

(* Estimated byte population of the live entries (quarantine excluded),
   used to seed the budget accounting at [create] and to re-sync it
   during a sweep so the estimate cannot drift. *)
let measure_bytes t =
  List.fold_left
    (fun total s ->
      let dir = Filename.concat t.dir s in
      Array.fold_left
        (fun total f ->
          try total + (Unix.stat (Filename.concat dir f)).Unix.st_size
          with Unix.Unix_error _ | Sys_error _ -> total)
        total (Sys.readdir dir))
    0 (shards t)

let create ?budget_bytes ~dir () =
  mkdir_p dir;
  let t =
    {
      dir;
      budget_bytes;
      bytes = Atomic.make 0;
      khits = Array.init 5 (fun _ -> Atomic.make 0);
      kmisses = Array.init 5 (fun _ -> Atomic.make 0);
      kstores = Array.init 5 (fun _ -> Atomic.make 0);
      corrupt = Atomic.make 0;
      faults = Atomic.make 0;
      evictions = Atomic.make 0;
    }
  in
  (* Only pay the population scan when a budget will actually use it. *)
  if budget_bytes <> None then Atomic.set t.bytes (measure_bytes t);
  t

let key ~pipeline ~top ~source =
  let material =
    String.concat "\x00"
      [ driver_version; pipeline; Option.value ~default:"" top; source ]
  in
  Digest.to_hex (Digest.string material)

(* A key for the staged entries: the kind joins the material, so the
   Fn and Vmod entries of one cone hash never collide. *)
let stage_key ~kind ~parts =
  let material =
    String.concat "\x00" (driver_version :: kind_to_string kind :: parts)
  in
  Digest.to_hex (Digest.string material)

type entry = {
  e_verilog : string;
      (* the payload: final Verilog for Job/Link, one module's Verilog
         for Vmod, normalized/optimized IR text for Src/Fn *)
  e_top : string;  (* top/function name; "" where not meaningful *)
  e_usage : Hir_resources.Model.usage;
}

(* The shard a key lives in: its first two hex digits.  Keys are hex
   digests, so this spreads entries uniformly over 256 directories. *)
let shard_dir t k =
  Filename.concat t.dir (if String.length k >= 2 then String.sub k 0 2 else k)

let payload_path t kind k = Filename.concat (shard_dir t k) (k ^ kind_ext kind)
let verilog_path t k = payload_path t Job k
let meta_path t k = Filename.concat (shard_dir t k) (k ^ ".meta")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Make a rename durable: fsync the directory that holds the entry. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Atomic *and durable* publish via temp file + fsync + rename + dir
   fsync: the bytes are on disk before the rename makes them visible,
   and the rename itself is persisted, so a post-crash cache can never
   hold a renamed-but-empty entry.  The temp file is unlinked on *any*
   failure (short write, injected fault, rename onto a squatted path),
   so failed stores cannot litter the cache directory. *)
let write_file_atomic ~dir path content =
  let tmp = Filename.temp_file ~temp_dir:dir ".cache" ".tmp" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc content;
          flush oc;
          Unix.fsync (Unix.descr_of_out_channel oc);
          close_out oc);
      Faults.point "cache.write";
      Sys.rename tmp path;
      fsync_dir dir)

let content_digest verilog = Digest.to_hex (Digest.string verilog)

let meta_to_string ~kind ~top ~digest (u : Hir_resources.Model.usage) =
  Printf.sprintf "kind %s\ntop %s\ndigest %s\nlut %d\nff %d\ndsp %d\nbram %d\n"
    (kind_to_string kind) top digest u.lut u.ff u.dsp u.bram

(* Sidecars from the single-kind era have no [kind] line; they can only
   be Job entries. *)
let meta_of_string s =
  let fields =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           match String.index_opt line ' ' with
           | Some i ->
             Some
               ( String.sub line 0 i,
                 String.sub line (i + 1) (String.length line - i - 1) )
           | None -> None)
  in
  let int k = Option.bind (List.assoc_opt k fields) int_of_string_opt in
  let kind =
    match List.assoc_opt "kind" fields with
    | None -> Some Job
    | Some s -> kind_of_string s
  in
  match
    ( kind,
      List.assoc_opt "top" fields,
      List.assoc_opt "digest" fields,
      int "lut",
      int "ff",
      int "dsp",
      int "bram" )
  with
  | Some kind, Some top, Some digest, Some lut, Some ff, Some dsp, Some bram ->
    Some (kind, top, digest, { Hir_resources.Model.lut; ff; dsp; bram })
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Quarantine                                                          *)

(* Move one damaged file into the quarantine without overwriting any
   forensic copy already there: on a name collision the new copy gets a
   numeric suffix ([<name>.1], [.2], …).  Best-effort throughout —
   quarantining must never fail the compile that found the damage. *)
let quarantine_file t path =
  mkdir_p (quarantine_dir t);
  let base = Filename.basename path in
  let rec dst_for n =
    let candidate =
      if n = 0 then Filename.concat (quarantine_dir t) base
      else Filename.concat (quarantine_dir t) (Printf.sprintf "%s.%d" base n)
    in
    if Sys.file_exists candidate then dst_for (n + 1) else candidate
  in
  try Sys.rename path (dst_for 0)
  with Sys_error _ | Unix.Unix_error _ -> (
    try Sys.remove path with Sys_error _ -> ())

(* Move a damaged entry's files out of the lookup path.  A concurrent
   worker may have quarantined (or rewritten) the entry already. *)
let quarantine_entry ?kind t k =
  let payloads =
    match kind with
    | Some kind -> [ payload_path t kind k ]
    | None -> List.map (fun kind -> payload_path t kind k) kinds
  in
  List.iter
    (fun path -> if Sys.file_exists path then quarantine_file t path)
    (payloads @ [ meta_path t k ])

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)

type verdict =
  | Hit of entry
  | Miss  (* no entry *)
  | Read_fault of string  (* transient IO failure; entry left alone *)
  | Corrupt of string  (* integrity failure; entry quarantined *)

(* The integrity check shared by the counting lookup and the
   side-effect-free [probe]: no counters, no mtime touch, but damaged
   entries are still quarantined (serving them later is never right). *)
let probe ?(kind = Job) t k =
  let vp = payload_path t kind k and mp = meta_path t k in
  (* The entry can be evicted (or be unreadable) between the existence
     check and the reads — a classic TOCTOU.  Per the contract above,
     IO failures degrade to misses, so neither [Sys_error] nor
     [Unix_error] from the reads may escape to the caller. *)
  try
    Faults.point "cache.read";
    if not (Sys.file_exists vp && Sys.file_exists mp) then Miss
    else
      match meta_of_string (read_file mp) with
      | None ->
        quarantine_entry ~kind t k;
        Corrupt (Printf.sprintf "%s: unparseable metadata" (k ^ ".meta"))
      | Some (meta_kind, top, digest, usage) ->
        if meta_kind <> kind then begin
          quarantine_entry t k;
          Corrupt (Printf.sprintf "%s: entry kind mismatch" (k ^ ".meta"))
        end
        else
          let verilog = read_file vp in
          if not (String.equal (content_digest verilog) digest) then begin
            quarantine_entry ~kind t k;
            Corrupt
              (Printf.sprintf "%s: content digest mismatch" (k ^ kind_ext kind))
          end
          else Hit { e_verilog = verilog; e_top = top; e_usage = usage }
  with
  | Faults.Injected p -> Read_fault ("injected fault at " ^ p)
  | Sys_error msg -> Read_fault msg
  | Unix.Unix_error (e, _, _) -> Read_fault (Unix.error_message e)

let consult ?(kind = Job) t k =
  let verdict = probe ~kind t k in
  let i = kind_index kind in
  (match verdict with
  | Hit _ ->
    Atomic.incr t.khits.(i);
    (* Touch the payload so file mtimes order the LRU sweep; both times
       0.0 means "set to now".  Best-effort: a concurrent eviction may
       have removed the file. *)
    if t.budget_bytes <> None then (
      try Unix.utimes (payload_path t kind k) 0.0 0.0
      with Unix.Unix_error _ | Sys_error _ -> ())
  | Miss -> Atomic.incr t.kmisses.(i)
  | Read_fault _ ->
    Atomic.incr t.kmisses.(i);
    Atomic.incr t.faults
  | Corrupt _ ->
    Atomic.incr t.kmisses.(i);
    Atomic.incr t.corrupt);
  verdict

let lookup t k = match consult t k with Hit e -> Some e | _ -> None

(* ------------------------------------------------------------------ *)
(* LRU eviction                                                        *)

(* One sweep: walk the shards, list every entry (payload+sidecar pair)
   with its payload mtime, and remove oldest-first until the population
   fits the budget.  Ties (same mtime second) break on the key so
   concurrent sweepers converge on the same victims.  Best-effort: a
   racing worker may have removed (or re-stored) an entry already. *)
let evict_to_budget t budget =
  let entries = ref [] in
  let total = ref 0 in
  List.iter
    (fun s ->
      let dir = Filename.concat t.dir s in
      Array.iter
        (fun f ->
          let path = Filename.concat dir f in
          match Unix.stat path with
          | exception (Unix.Unix_error _ | Sys_error _) -> ()
          | st ->
            total := !total + st.Unix.st_size;
            if not (Filename.check_suffix f ".meta") then
              let k = Filename.remove_extension f in
              let msize =
                try (Unix.stat (meta_path t k)).Unix.st_size
                with Unix.Unix_error _ | Sys_error _ -> 0
              in
              entries :=
                (st.Unix.st_mtime, k, path, st.Unix.st_size + msize) :: !entries)
        (Sys.readdir dir))
    (shards t);
  let victims =
    List.sort
      (fun (m1, k1, _, _) (m2, k2, _, _) ->
        match compare (m1 : float) m2 with 0 -> compare k1 k2 | c -> c)
      !entries
  in
  let remaining = ref !total in
  List.iter
    (fun (_, k, payload, size) ->
      if !remaining > budget then begin
        (try Sys.remove payload with Sys_error _ -> ());
        (try Sys.remove (meta_path t k) with Sys_error _ -> ());
        remaining := !remaining - size;
        Atomic.incr t.evictions
      end)
    victims;
  Atomic.set t.bytes !remaining

(* ------------------------------------------------------------------ *)
(* Store                                                               *)

let store ?(kind = Job) t k entry =
  (* Filling the cache is best-effort: a full disk, revoked permissions
     or a squatter at the entry path must not fail a compile that
     already succeeded.  The next lookup simply misses again. *)
  try
    let shard = shard_dir t k in
    mkdir_p shard;
    let meta =
      meta_to_string ~kind ~top:entry.e_top
        ~digest:(content_digest entry.e_verilog)
        entry.e_usage
    in
    write_file_atomic ~dir:shard (payload_path t kind k) entry.e_verilog;
    write_file_atomic ~dir:shard (meta_path t k) meta;
    Atomic.incr t.kstores.(kind_index kind);
    (match t.budget_bytes with
    | None -> ()
    | Some budget ->
      let added = String.length entry.e_verilog + String.length meta in
      if Atomic.fetch_and_add t.bytes added + added > budget then
        evict_to_budget t budget);
    Ok ()
  with
  | Faults.Injected p ->
    Atomic.incr t.faults;
    Error ("injected fault at " ^ p)
  | Sys_error msg ->
    Atomic.incr t.faults;
    Error msg
  | Unix.Unix_error (e, _, _) ->
    Atomic.incr t.faults;
    Error (Unix.error_message e)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

(* The headline hit/miss/store counters report the Job kind only — the
   whole-job fast path — so "8 hits / 0 misses" on a warm batch keeps
   meaning what it always meant.  The staged kinds are reported
   separately by [kind_stats]. *)
let hits t = Atomic.get t.khits.(kind_index Job)
let misses t = Atomic.get t.kmisses.(kind_index Job)
let store_count t = Atomic.get t.kstores.(kind_index Job)
let corrupt_count t = Atomic.get t.corrupt
let fault_count t = Atomic.get t.faults
let eviction_count t = Atomic.get t.evictions

let kind_stats t =
  List.map
    (fun kind ->
      let i = kind_index kind in
      ( kind,
        {
          k_hits = Atomic.get t.khits.(i);
          k_misses = Atomic.get t.kmisses.(i);
          k_stores = Atomic.get t.kstores.(i);
        } ))
    kinds

(* ------------------------------------------------------------------ *)
(* Offline maintenance: `hirc cache --verify | --prune | --stats`      *)

type verify_report = {
  vr_scanned : int;  (* entries examined (one per .meta) *)
  vr_ok : int;
  vr_quarantined : (string * string) list;  (* key, reason *)
}

let payload_exts = List.map kind_ext kinds

let is_payload f = List.exists (fun ext -> Filename.check_suffix f ext) payload_exts

(* Run the hit-path integrity check over every entry on disk through
   the side-effect-free [probe]: damaged entries are quarantined
   exactly as a lookup would have done, but the runtime hit/miss
   counters (`--stats`) are not perturbed and no LRU mtime is touched. *)
let verify t =
  let shard_files =
    List.concat_map
      (fun s ->
        Sys.readdir (Filename.concat t.dir s)
        |> Array.to_list
        |> List.map (fun f -> (s, f)))
      (shards t)
  in
  let entries =
    List.filter_map
      (fun (_, f) ->
        if Filename.check_suffix f ".meta" then Some (Filename.remove_extension f)
        else None)
      shard_files
    |> List.sort compare
  in
  let orphans =
    (* payloads with no sidecar can never hit; quarantine them too *)
    List.filter_map
      (fun (_, f) ->
        if is_payload f && not (Sys.file_exists (meta_path t (Filename.remove_extension f)))
        then Some (Filename.remove_extension f)
        else None)
      shard_files
    |> List.sort compare
  in
  (* Pre-shard flat entries at the root can never hit again; retire
     them rather than leaving dead weight in the directory. *)
  let legacy =
    Sys.readdir t.dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".meta" || is_payload f)
    |> List.sort compare
  in
  let quarantined = ref [] in
  let ok = ref 0 in
  List.iter
    (fun k ->
      (* The sidecar names the entry's kind; an unreadable or
         unparseable sidecar probes as the default kind, whose
         quarantine path sweeps all possible payloads. *)
      let kind =
        match meta_of_string (read_file (meta_path t k)) with
        | Some (kind, _, _, _) -> kind
        | None | (exception Sys_error _) | (exception Unix.Unix_error _) -> Job
      in
      match probe ~kind t k with
      | Hit _ -> incr ok
      | Miss ->
        quarantine_entry t k;
        quarantined := (k, "missing payload") :: !quarantined
      | Corrupt reason -> quarantined := (k, reason) :: !quarantined
      | Read_fault reason -> quarantined := (k, "unreadable: " ^ reason) :: !quarantined)
    entries;
  List.iter
    (fun k ->
      quarantine_entry t k;
      quarantined := (k, "orphan payload (no metadata)") :: !quarantined)
    orphans;
  List.iter
    (fun f ->
      quarantine_file t (Filename.concat t.dir f);
      quarantined := (f, "legacy flat entry (pre-shard layout)") :: !quarantined)
    legacy;
  {
    vr_scanned = List.length entries + List.length orphans + List.length legacy;
    vr_ok = !ok;
    vr_quarantined = List.rev !quarantined;
  }

type prune_report = { pr_removed : int; pr_bytes : int }

(* Delete quarantined entries and any stale temp files left by killed
   processes (the in-process writer cleans its own). *)
let prune t =
  let removed = ref 0 and bytes = ref 0 in
  let rm path =
    (try
       bytes := !bytes + (Unix.stat path).Unix.st_size;
       Sys.remove path;
       incr removed
     with Sys_error _ | Unix.Unix_error _ -> ())
  in
  let qdir = quarantine_dir t in
  if Sys.file_exists qdir && Sys.is_directory qdir then begin
    Array.iter (fun f -> rm (Filename.concat qdir f)) (Sys.readdir qdir);
    (try Unix.rmdir qdir with Unix.Unix_error _ -> ())
  end;
  let sweep_tmp dir =
    Array.iter
      (fun f -> if Filename.check_suffix f ".tmp" then rm (Filename.concat dir f))
      (Sys.readdir dir)
  in
  sweep_tmp t.dir;
  List.iter (fun s -> sweep_tmp (Filename.concat t.dir s)) (shards t);
  { pr_removed = !removed; pr_bytes = !bytes }

(* On-disk population by kind, for `hirc cache DIR --stats`:
   (kind, entry count, payload+sidecar bytes). *)
let stats_by_kind t =
  let counts = Array.make 5 0 and sizes = Array.make 5 0 in
  List.iter
    (fun s ->
      let dir = Filename.concat t.dir s in
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".meta" then begin
            let k = Filename.remove_extension f in
            match meta_of_string (read_file (Filename.concat dir f)) with
            | exception Sys_error _ -> ()
            | None -> ()
            | Some (kind, _, _, _) ->
              let i = kind_index kind in
              counts.(i) <- counts.(i) + 1;
              let size path =
                try (Unix.stat path).Unix.st_size
                with Unix.Unix_error _ | Sys_error _ -> 0
              in
              sizes.(i) <-
                sizes.(i) + size (Filename.concat dir f) + size (payload_path t kind k)
          end)
        (Sys.readdir dir))
    (shards t);
  List.map (fun kind -> (kind, counts.(kind_index kind), sizes.(kind_index kind))) kinds
