lib/rtl/flatten.ml: Format Hir_verilog List
