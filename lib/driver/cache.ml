(* Content-addressed compilation cache.

   A cache entry is keyed on

     Digest(driver version ⊕ pipeline spec ⊕ top selector ⊕ source text)

   so editing the source, changing the pass pipeline, picking another
   top function, or bumping [driver_version] (do this whenever codegen
   output changes) each invalidate the entry.  An entry persists the
   emitted Verilog ([<key>.v]) plus a small metadata sidecar
   ([<key>.meta]: chosen top module and the modeled resource usage), so
   a warm hit needs no parsing, verification, passes or codegen at all.

   Writes go through a unique temp file followed by [Sys.rename], which
   is atomic on POSIX: concurrent workers (or concurrent hirc
   processes) racing to fill the same entry simply last-write-win with
   identical content, and readers never observe a partial entry.  Hit
   and miss counters are atomics for the same reason. *)

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

(* Bump whenever the emitted Verilog or the meta format changes. *)
let driver_version = "hir-driver/1"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  { dir; hits = Atomic.make 0; misses = Atomic.make 0 }

let key ~pipeline ~top ~source =
  let material =
    String.concat "\x00"
      [ driver_version; pipeline; Option.value ~default:"" top; source ]
  in
  Digest.to_hex (Digest.string material)

type entry = {
  e_verilog : string;
  e_top : string;
  e_usage : Hir_resources.Model.usage;
}

let verilog_path t k = Filename.concat t.dir (k ^ ".v")
let meta_path t k = Filename.concat t.dir (k ^ ".meta")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file_atomic ~dir path content =
  let tmp = Filename.temp_file ~temp_dir:dir ".cache" ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let meta_to_string ~top (u : Hir_resources.Model.usage) =
  Printf.sprintf "top %s\nlut %d\nff %d\ndsp %d\nbram %d\n" top u.lut u.ff u.dsp u.bram

let meta_of_string s =
  let fields =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           match String.index_opt line ' ' with
           | Some i ->
             Some
               ( String.sub line 0 i,
                 String.sub line (i + 1) (String.length line - i - 1) )
           | None -> None)
  in
  let int k = Option.bind (List.assoc_opt k fields) int_of_string_opt in
  match (List.assoc_opt "top" fields, int "lut", int "ff", int "dsp", int "bram") with
  | Some top, Some lut, Some ff, Some dsp, Some bram ->
    Some (top, { Hir_resources.Model.lut; ff; dsp; bram })
  | _ -> None

let lookup t k =
  let vp = verilog_path t k and mp = meta_path t k in
  let entry =
    (* The entry can be evicted (or be unreadable) between the existence
       check and the reads — a classic TOCTOU.  Per the contract above,
       corrupt or vanishing entries degrade to misses, so the [Sys_error]
       from [read_file] must not escape to the caller. *)
    try
      if Sys.file_exists vp && Sys.file_exists mp then
        match meta_of_string (read_file mp) with
        | Some (top, usage) ->
          Some { e_verilog = read_file vp; e_top = top; e_usage = usage }
        | None -> None
      else None
    with Sys_error _ -> None
  in
  (match entry with
  | Some _ -> Atomic.incr t.hits
  | None -> Atomic.incr t.misses);
  entry

let store t k entry =
  (* Filling the cache is best-effort: a full disk, revoked permissions
     or a squatter at the entry path must not fail a compile that
     already succeeded.  The next lookup simply misses again. *)
  try
    write_file_atomic ~dir:t.dir (verilog_path t k) entry.e_verilog;
    write_file_atomic ~dir:t.dir (meta_path t k)
      (meta_to_string ~top:entry.e_top entry.e_usage)
  with Sys_error _ -> ()

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
