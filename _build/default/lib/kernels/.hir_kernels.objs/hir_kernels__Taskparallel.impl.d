lib/kernels/taskparallel.ml: Array Bitvec Builder Hir_dialect Hir_ir Interp Ops Stencil1d Typ Types Util
