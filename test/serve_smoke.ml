(* serve-smoke: end-to-end exercise of `hirc serve` as a real child
   process (the actual binary, so the process-wide SIGPIPE ignore is
   under test, not just the library).  Driven by `make serve-smoke`
   under timeout(1):

     1. start `hirc serve --socket …` and wait for the announce line's
        socket to appear;
     2. drive compile jobs (kernel hits and misses, an invalid kernel,
        a cancel of an unknown id) and a line-JSON health probe;
     3. the SIGPIPE regression: a second client requests the ~6 MB
        gemm Verilog — far larger than any socket buffer, so the
        server blocks mid-write — and hangs up without reading.
        Without the process-wide SIGPIPE ignore that write kills the
        server; with it, it is a per-connection EPIPE.  The first
        client then proves the server still answers.
     4. an HTTP GET /health probe on a raw connection;
     5. a shutdown frame; the server must exit 0 on its own.

   Usage: serve_smoke.exe /path/to/hirc.exe *)

module Protocol = Hir_driver.Protocol

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("serve-smoke: FAIL: " ^ m); exit 1) fmt

let expect_field j name =
  match Protocol.Json.field_str j name with
  | Some v -> v
  | None -> fail "response lacks %S: %s" name (Protocol.Json.to_string j)

let recv_or_die c what =
  match Protocol.Client.recv c with
  | Some j -> j
  | None -> fail "server hung up while waiting for %s" what

let () =
  let hirc = if Array.length Sys.argv > 1 then Sys.argv.(1) else fail "usage: serve_smoke HIRC" in
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hir-serve-smoke-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists tmp) then Unix.mkdir tmp 0o755;
  let sock = Filename.concat tmp "smoke.sock" in
  let cache_dir = Filename.concat tmp "cache" in
  if Sys.file_exists sock then Unix.unlink sock;
  let pid =
    Unix.create_process hirc
      [| hirc; "serve"; "--socket"; sock; "-j"; "2"; "--cache-dir"; cache_dir |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let rec wait_sock n =
    if n = 0 then fail "server socket never appeared";
    if not (Sys.file_exists sock) then begin
      Unix.sleepf 0.05;
      wait_sock (n - 1)
    end
  in
  wait_sock 200;

  (* 2: normal traffic on a long-lived connection. *)
  let c = Protocol.Client.connect_unix sock in
  Protocol.Client.send c (Protocol.Json.Obj [ ("op", Protocol.Json.Str "health") ]);
  let h = recv_or_die c "health" in
  if expect_field h "event" <> "health" || expect_field h "status" <> "ok" then
    fail "bad health response: %s" (Protocol.Json.to_string h);
  let compile id fields =
    Protocol.Client.send c
      (Protocol.Json.Obj
         ([ ("op", Protocol.Json.Str "compile"); ("id", Protocol.Json.Str id) ]
         @ fields))
  in
  compile "k1" [ ("kernel", Protocol.Json.Str "fifo") ];
  compile "k2" [ ("kernel", Protocol.Json.Str "transpose") ];
  compile "k3" [ ("kernel", Protocol.Json.Str "no-such-kernel") ];
  Protocol.Client.send c
    (Protocol.Json.Obj
       [ ("op", Protocol.Json.Str "cancel"); ("id", Protocol.Json.Str "ghost") ]);
  let seen = Hashtbl.create 8 in
  let rec pump need =
    if need > 0 then begin
      let j = recv_or_die c "job results" in
      (match (expect_field j "event", Protocol.Json.field_str j "id") with
      | "result", Some id ->
        Hashtbl.replace seen id (expect_field j "status")
      | "cancel", Some id -> Hashtbl.replace seen ("cancel:" ^ id) (expect_field j "state")
      | ev, _ -> fail "unexpected event %s" ev);
      pump (need - 1)
    end
  in
  pump 4;
  let check id expected =
    match Hashtbl.find_opt seen id with
    | Some st when st = expected -> ()
    | Some st -> fail "%s: expected %s, got %s" id expected st
    | None -> fail "%s: no response" id
  in
  check "k1" "ok";
  check "k2" "ok";
  check "k3" "failed";
  check "cancel:ghost" "unknown";

  (* 3: SIGPIPE regression — ask for the ~6 MB gemm Verilog, never
     read it, hang up while the server is blocked mid-write. *)
  let rude = Protocol.Client.connect_unix sock in
  Protocol.Client.send rude
    (Protocol.Json.Obj
       [
         ("op", Protocol.Json.Str "compile");
         ("id", Protocol.Json.Str "rude");
         ("kernel", Protocol.Json.Str "gemm");
         ("verilog", Protocol.Json.Bool true);
       ]);
  Unix.sleepf 1.5;  (* let the compile finish and the write block *)
  Protocol.Client.close rude;
  (* The server must still be alive and serving. *)
  compile "k4" [ ("kernel", Protocol.Json.Str "fifo") ];
  let j = recv_or_die c "post-hangup result" in
  if Protocol.Json.field_str j "id" <> Some "k4" || expect_field j "status" <> "ok" then
    fail "server unhealthy after client hangup: %s" (Protocol.Json.to_string j);

  (* 4: HTTP probe on a raw connection. *)
  let http = Protocol.Client.connect_unix sock in
  Protocol.Client.send_line http "GET /health HTTP/1.0\r\n";
  (match Protocol.Client.recv_line http with
  | Some line when String.length line >= 15 && String.sub line 0 15 = "HTTP/1.0 200 OK" -> ()
  | Some line -> fail "bad HTTP status line: %s" line
  | None -> fail "no HTTP response");
  Protocol.Client.close http;

  (* 5: clean shutdown. *)
  Protocol.Client.send c (Protocol.Json.Obj [ ("op", Protocol.Json.Str "shutdown") ]);
  let ack = recv_or_die c "shutdown ack" in
  if expect_field ack "event" <> "shutdown" then
    fail "bad shutdown ack: %s" (Protocol.Json.to_string ack);
  Protocol.Client.close c;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> fail "server exited %d" n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> fail "server killed by signal %d" n);
  print_endline "serve-smoke: OK"
