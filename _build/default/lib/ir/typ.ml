(* The IR type system.

   Like MLIR, the set of types is open: dialects extend [t] with new
   constructors and register printers so that generic IR utilities can
   render them.  The builtin constructors cover the software-like types
   every dialect needs. *)

type t = ..

type t +=
  | Int of int  (** [iN]: N-bit signless integer, N >= 1. *)
  | Float of int  (** [fN]: IEEE float of width 32 or 64. *)
  | None_type  (** The unit type of ops that produce no data. *)

let i1 = Int 1
let i8 = Int 8
let i32 = Int 32
let i64 = Int 64
let f32 = Float 32
let f64 = Float 64

(* Dialect printer hooks.  Each hook returns [true] if it handled the
   type. *)
let printers : (Format.formatter -> t -> bool) list ref = ref []

let register_printer f = printers := f :: !printers

let pp fmt t =
  match t with
  | Int n -> Format.fprintf fmt "i%d" n
  | Float n -> Format.fprintf fmt "f%d" n
  | None_type -> Format.pp_print_string fmt "none"
  | _ ->
    let handled = List.exists (fun f -> f fmt t) !printers in
    if not handled then Format.pp_print_string fmt "<unregistered-type>"

let to_string t = Format.asprintf "%a" pp t

let equal (a : t) (b : t) = a = b

(* Width in bits of a value of this type as it appears on a wire, if it
   is a data-carrying type.  Dialects register hooks for their own
   types. *)
let width_hooks : (t -> int option) list ref = ref []

let register_width_hook f = width_hooks := f :: !width_hooks

let bit_width t =
  match t with
  | Int n -> Some n
  | Float n -> Some n
  | None_type -> Some 0
  | _ -> List.find_map (fun f -> f t) !width_hooks

let is_integer = function Int _ -> true | _ -> false
