(* Structural IR verification:

   - every operand is defined before use: either by an earlier op in the
     same block, by an enclosing block's arguments, or by an op that
     strictly encloses the use (SSA dominance for nested regions);
   - result/operand arrays carry types consistent with the value;
   - registered per-op dialect verifiers hold.

   Schedule verification (the paper's Section 6.1) is a separate,
   HIR-specific pass in [Hir_dialect.Verify_schedule]. *)

open Ir

let verify_op ?(engine = Diagnostic.Engine.create ()) root =
  let visible : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let add v = Hashtbl.replace visible v.v_id () in
  let remove v = Hashtbl.remove visible v.v_id in
  let rec check_op op =
    Array.iteri
      (fun i v ->
        if not (Hashtbl.mem visible v.v_id) then
          Diagnostic.Engine.errorf engine op.loc
            "operand %d of '%s' does not dominate its use" i op.op_name)
      op.operands;
    (match Dialect.lookup_op op.op_name with
    | Some def -> def.od_verify op engine
    | None ->
      Diagnostic.Engine.errorf engine op.loc "unregistered operation '%s'"
        op.op_name);
    (* Results become visible to subsequent ops in this block, and we
       also make them visible before walking nested regions so regions
       can refer to enclosing defs textually before them?  No: MLIR
       semantics are that results are NOT visible inside the op's own
       regions; only prior defs and block args are.  We follow MLIR. *)
    List.iter
      (fun r ->
        List.iter
          (fun b ->
            Array.iter add b.b_args;
            List.iter check_op b.b_ops;
            (* leaving scope: region-local defs go out of scope *)
            List.iter (fun o -> Array.iter remove o.results) b.b_ops;
            Array.iter remove b.b_args)
          r.blocks)
      op.regions;
    Array.iter add op.results
  in
  check_op root;
  engine

let verify root =
  let engine = verify_op root in
  if Diagnostic.Engine.has_errors engine then Error engine else Ok ()

let verify_exn root =
  match verify root with
  | Ok () -> ()
  | Error engine -> failwith ("IR verification failed:\n" ^ Diagnostic.Engine.to_string engine)
