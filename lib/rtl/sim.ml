(* Two-phase cycle-accurate simulator for the flattened synthesizable
   subset:

     phase 1  settle combinational logic (assigns in topological order)
     phase 2  evaluate all always @(posedge clk) statements against the
              settled state, then commit register and memory updates

   Width semantics follow Verilog's context-determined evaluation as
   documented in [Hir_verilog.Ast].

   Two engines share the same interface:

   - [Compiled] (the default): a compile-once, run-many engine.  At
     [create] time every signal name is resolved to an integer slot in
     a dense state array, every expression is compiled to a closure
     with its context width precomputed, and always-blocks are compiled
     with a reusable update buffer.  [settle] is event-driven: the
     assign dependency graph is built once and per cycle only assigns
     whose source slots actually changed are re-evaluated (dirty-set
     propagation in topological order).  Signals of width <= 63 live
     unboxed on native OCaml ints with masking; wider signals fall back
     to [Bitvec].

   - [Reference]: the original tree-walking interpreter, kept as the
     oracle for the compiled engine (see test_sim_equiv) and as the
     executable specification of the width semantics. *)

open Hir_verilog.Ast

exception Sim_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Sim_error s)) fmt

(* Fault-injection hook, called once per settle of the *compiled*
   engine only — the reference walker stays clean because it is the
   fallback the harness degrades to on [Sim_error].  The driver's fault
   subsystem (lib/driver/faults.ml, which this library must not depend
   on) installs a callback that raises [Sim_error] on an injected
   "sim.settle" fault; the default is a no-op closure, so the cost when
   disabled is one ref read per settle. *)
let settle_fault_hook : (unit -> unit) ref = ref (fun () -> ())

type assertion_failure = { at_cycle : int; message : string }

(* ------------------------------------------------------------------ *)
(* Shared netlist analysis                                             *)

(* Wires read by an expression (for the dependency graph); memory reads
   depend on the address expression only — the memory contents are
   state. *)
let rec wire_deps expr acc =
  match expr with
  | Const _ -> acc
  | Ref name -> name :: acc
  | Index (_, a) -> wire_deps a acc
  | Slice (e, _, _) -> wire_deps e acc
  | Unop (_, e) -> wire_deps e acc
  | Binop (_, a, b) -> wire_deps a (wire_deps b acc)
  | Ternary (c, a, b) -> wire_deps c (wire_deps a (wire_deps b acc))
  | Concat es -> List.fold_left (fun acc e -> wire_deps e acc) acc es

(* Memories read by an expression — the state half of the dependency
   story that [wire_deps] deliberately excludes.  The compiled engine
   uses this to re-settle reads of a memory after a write commits. *)
let rec mem_reads expr acc =
  match expr with
  | Const _ | Ref _ -> acc
  | Index (name, a) -> mem_reads a (name :: acc)
  | Slice (e, _, _) -> mem_reads e acc
  | Unop (_, e) -> mem_reads e acc
  | Binop (_, a, b) -> mem_reads a (mem_reads b acc)
  | Ternary (c, a, b) -> mem_reads c (mem_reads a (mem_reads b acc))
  | Concat es -> List.fold_left (fun acc e -> mem_reads e acc) acc es

(* Topologically sort the assigns (edge from each dependency that is
   itself an assign target).  [is_comb name] says whether [name] is a
   combinational (non-reg) signal; register reads do not create edges.
   On a combinational loop the full cycle path is reported. *)
let topo_sort_assigns ~is_comb assign_list =
  let target_tbl = Hashtbl.create 64 in
  List.iter (fun (t, e) -> Hashtbl.replace target_tbl t e) assign_list;
  let visited = Hashtbl.create 64 in
  let sorted = ref [] in
  let rec visit ~stack target =
    match Hashtbl.find_opt visited target with
    | Some `Done -> ()
    | Some `In_progress ->
      (* [stack] holds the in-progress chain, most recent first; the
         loop is the suffix starting at [target]. *)
      let chain = List.rev stack in
      let rec from_target = function
        | x :: _ as l when x = target -> l
        | _ :: tl -> from_target tl
        | [] -> []
      in
      let path = from_target chain @ [ target ] in
      fail "combinational loop: %s" (String.concat " -> " path)
    | None ->
      Hashtbl.replace visited target `In_progress;
      let expr = Hashtbl.find target_tbl target in
      List.iter
        (fun dep ->
          if is_comb dep && Hashtbl.mem target_tbl dep then
            visit ~stack:(target :: stack) dep)
        (wire_deps expr []);
      Hashtbl.replace visited target `Done;
      sorted := (target, expr) :: !sorted
  in
  List.iter (fun (t, _) -> visit ~stack:[] t) assign_list;
  List.rev !sorted

(* Per-run statistics, surfaced through [Pass.record_counter] so
   [hirc --stats] and the Chrome traces cover simulation too. *)
type stats = {
  st_cycles : int;
  st_settles : int;
  st_assigns_evaluated : int;
  st_assigns_skipped : int;
  st_fastpath_evaluated : int;  (* evaluations whose target is unboxed *)
  st_narrow_signals : int;  (* width <= 63, native-int representation *)
  st_wide_signals : int;
}

(* ================================================================== *)
(* Reference engine: the original tree walker                          *)

module Reference = struct
  type signal = {
    mutable value : Bitvec.t;
    width : int;
    is_reg : bool;
  }

  type memory = { cells : Bitvec.t array; elem_width : int }

  type t = {
    signals : (string, signal) Hashtbl.t;
    memories : (string, memory) Hashtbl.t;
    assigns : (string * expr) list;  (* topologically sorted *)
    always : stmt list;
    inputs : string list;
    outputs : string list;
    mutable cycle : int;
    mutable failures : assertion_failure list;
    mutable settles : int;
  }

  (* ---------------------------------------------------------------- *)
  (* Construction                                                      *)

  let signal_width t name =
    match Hashtbl.find_opt t.signals name with
    | Some s -> s.width
    | None -> (
      match Hashtbl.find_opt t.memories name with
      | Some m -> m.elem_width
      | None -> fail "unknown signal %s" name)

  let create (flat : Flatten.flat) =
    let signals = Hashtbl.create 256 in
    let memories = Hashtbl.create 16 in
    let assigns = ref [] in
    let always_rev = ref [] in
    List.iter
      (fun item ->
        match item with
        | Wire_decl { name; width } ->
          Hashtbl.replace signals name { value = Bitvec.zero width; width; is_reg = false }
        | Reg_decl { name; width } ->
          Hashtbl.replace signals name { value = Bitvec.zero width; width; is_reg = true }
        | Mem_decl { name; width; depth; _ } ->
          Hashtbl.replace memories name
            { cells = Array.make depth (Bitvec.zero width); elem_width = width }
        | Assign { target; expr } -> assigns := (target, expr) :: !assigns
        | Always_ff stmts -> always_rev := stmts :: !always_rev
        | Comment _ -> ()
        | Instance _ -> fail "simulator requires a flattened design")
      flat.flat_items;
    let assign_list = List.rev !assigns in
    let is_comb name =
      match Hashtbl.find_opt signals name with
      | Some s -> not s.is_reg
      | None -> false
    in
    {
      signals;
      memories;
      assigns = topo_sort_assigns ~is_comb assign_list;
      always = List.concat (List.rev !always_rev);
      inputs = flat.flat_inputs;
      outputs = flat.flat_outputs;
      cycle = 0;
      failures = [];
      settles = 0;
    }

  (* ---------------------------------------------------------------- *)
  (* Expression evaluation                                             *)

  let natural t expr = natural_width ~signal_width:(signal_width t) expr

  let rec eval t ~width expr : Bitvec.t =
    match expr with
    | Const b -> Bitvec.resize ~width b
    | Ref name -> (
      match Hashtbl.find_opt t.signals name with
      | Some s -> Bitvec.resize ~width s.value
      | None -> fail "read of unknown signal %s" name)
    | Index (name, addr) -> (
      match Hashtbl.find_opt t.memories name with
      | Some m ->
        let a = Bitvec.to_int (eval t ~width:(max 1 (natural t addr)) addr) in
        if a < Array.length m.cells then Bitvec.resize ~width m.cells.(a)
        else Bitvec.zero width
      | None -> fail "indexing non-memory %s" name)
    | Slice (e, hi, lo) ->
      let v = eval t ~width:(max (hi + 1) (natural t e)) e in
      Bitvec.resize ~width (Bitvec.extract ~hi ~lo v)
    | Unop (Not, e) -> Bitvec.lognot (eval t ~width e)
    | Unop (Red_or, e) ->
      let v = eval t ~width:(max 1 (natural t e)) e in
      Bitvec.resize ~width (Bitvec.of_bool (not (Bitvec.is_zero v)))
    | Unop (Red_and, e) ->
      let w = max 1 (natural t e) in
      let v = eval t ~width:w e in
      Bitvec.resize ~width (Bitvec.of_bool (Bitvec.equal v (Bitvec.ones w)))
    | Binop (((Add | Sub | Mul | And | Or | Xor) as op), a, b) ->
      let x = eval t ~width a and y = eval t ~width b in
      let f =
        match op with
        | Add -> Bitvec.add
        | Sub -> Bitvec.sub
        | Mul -> Bitvec.mul
        | And -> Bitvec.logand
        | Or -> Bitvec.logor
        | Xor -> Bitvec.logxor
        | _ -> assert false
      in
      f x y
    | Binop (Shl, a, b) ->
      let shift = Bitvec.to_int (eval t ~width:(max 1 (natural t b)) b) in
      Bitvec.shift_left (eval t ~width a) (min shift width)
    | Binop (Shr, a, b) ->
      let shift = Bitvec.to_int (eval t ~width:(max 1 (natural t b)) b) in
      Bitvec.shift_right_logical (eval t ~width a) (min shift width)
    | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
      let w = max 1 (max (natural t a) (natural t b)) in
      let x = eval t ~width:w a and y = eval t ~width:w b in
      let c = Bitvec.compare x y in
      let r =
        match op with
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | Eq -> c = 0
        | Ne -> c <> 0
        | _ -> assert false
      in
      Bitvec.resize ~width (Bitvec.of_bool r)
    | Binop (Log_and, a, b) ->
      let x = eval t ~width:(max 1 (natural t a)) a in
      let y = eval t ~width:(max 1 (natural t b)) b in
      Bitvec.resize ~width (Bitvec.of_bool (not (Bitvec.is_zero x) && not (Bitvec.is_zero y)))
    | Binop (Log_or, a, b) ->
      let x = eval t ~width:(max 1 (natural t a)) a in
      let y = eval t ~width:(max 1 (natural t b)) b in
      Bitvec.resize ~width (Bitvec.of_bool (not (Bitvec.is_zero x) || not (Bitvec.is_zero y)))
    | Ternary (c, a, b) ->
      let cond = eval t ~width:(max 1 (natural t c)) c in
      if Bitvec.is_zero cond then eval t ~width b else eval t ~width a
    | Concat [] -> fail "empty concatenation"
    | Concat (e0 :: rest) ->
      let part e = eval t ~width:(max 1 (natural t e)) e in
      let v = List.fold_left (fun acc e -> Bitvec.concat acc (part e)) (part e0) rest in
      Bitvec.resize ~width v

  let eval_bool t expr = not (Bitvec.is_zero (eval t ~width:(max 1 (natural t expr)) expr))

  (* ---------------------------------------------------------------- *)
  (* Cycle execution                                                   *)

  type update =
    | Set_reg of string * Bitvec.t
    | Set_mem of string * int * Bitvec.t

  let rec run_stmt t acc stmt =
    match stmt with
    | Nonblocking (Lref name, e) ->
      let w = signal_width t name in
      Set_reg (name, eval t ~width:w e) :: acc
    | Nonblocking (Lindex (name, addr), e) -> (
      match Hashtbl.find_opt t.memories name with
      | Some m ->
        let a = Bitvec.to_int (eval t ~width:(max 1 (natural t addr)) addr) in
        Set_mem (name, a, eval t ~width:m.elem_width e) :: acc
      | None -> fail "write to non-memory %s" name)
    | If (c, then_s, else_s) ->
      if eval_bool t c then List.fold_left (run_stmt t) acc then_s
      else List.fold_left (run_stmt t) acc else_s
    | Assert_stmt { cond; message } ->
      if not (eval_bool t cond) then
        t.failures <- { at_cycle = t.cycle; message } :: t.failures;
      acc

  let settle t =
    t.settles <- t.settles + 1;
    List.iter
      (fun (target, expr) ->
        let s = Hashtbl.find t.signals target in
        s.value <- eval t ~width:s.width expr)
      t.assigns

  let commit t updates =
    List.iter
      (fun u ->
        match u with
        | Set_reg (name, v) -> (Hashtbl.find t.signals name).value <- v
        | Set_mem (name, a, v) ->
          let m = Hashtbl.find t.memories name in
          if a < Array.length m.cells then m.cells.(a) <- v
          else
            t.failures <-
              { at_cycle = t.cycle; message = Printf.sprintf "write past end of %s" name }
              :: t.failures)
      updates

  (* Drive an input signal (before [step]). *)
  let set_input t name v =
    match Hashtbl.find_opt t.signals name with
    | Some s -> s.value <- Bitvec.resize ~width:s.width v
    | None -> fail "unknown input %s" name

  let peek t name =
    match Hashtbl.find_opt t.signals name with
    | Some s -> s.value
    | None -> fail "unknown signal %s" name

  (* Clock edge against already-settled combinational state. *)
  let clock t =
    let updates = List.fold_left (run_stmt t) [] t.always in
    commit t updates;
    t.cycle <- t.cycle + 1

  let step t =
    settle t;
    clock t

  let settle_only t = settle t

  let failures t = List.rev t.failures
  let cycle t = t.cycle

  (* All named signals with their widths, for waveform dumping. *)
  let signal_names t =
    Hashtbl.fold (fun name s acc -> (name, s.width) :: acc) t.signals []
    |> List.sort compare

  let stats t =
    let n_assigns = List.length t.assigns in
    let narrow, wide =
      Hashtbl.fold
        (fun _ s (n, w) -> if s.width <= 63 then (n + 1, w) else (n, w + 1))
        t.signals (0, 0)
    in
    {
      st_cycles = t.cycle;
      st_settles = t.settles;
      st_assigns_evaluated = t.settles * n_assigns;
      st_assigns_skipped = 0;
      st_fastpath_evaluated = 0;
      st_narrow_signals = narrow;
      st_wide_signals = wide;
    }
end

(* ================================================================== *)
(* Compiled engine                                                     *)

module Compiled = struct
  (* Low [w] bits of a native int; [mask 63] is all 63 OCaml int bits
     (-1), so width-63 values use bit 62 as the OCaml sign bit.  Every
     arithmetic case below stays exact on that representation because
     OCaml ints wrap modulo 2^63 and [land] masks bit patterns. *)
  let mask w = if w >= 63 then -1 else (1 lsl w) - 1

  (* Unsigned comparison of two masked ints: flipping the sign bit maps
     the unsigned 63-bit order onto the signed order. *)
  let ucmp a b = Int.compare (a lxor min_int) (b lxor min_int)

  type slot = {
    sl_name : string;
    sl_width : int;
    sl_is_reg : bool;
    sl_idx : int;  (* index into the narrow or wide value array *)
    sl_id : int;  (* dense id in the dependency graph *)
  }

  type mem_store = M_narrow of int array | M_wide of Bitvec.t array

  type mem = {
    m_name : string;
    m_elem_width : int;
    m_store : mem_store;
    m_id : int;  (* dependency-graph id: memory contents are a source *)
    m_pos : int;  (* index into the [mems] array, for update records *)
  }

  (* Compilation environment: name resolution plus the live state
     arrays the compiled closures read and write. *)
  type cenv = {
    ce_signals : (string, slot) Hashtbl.t;
    ce_mems : (string, mem) Hashtbl.t;
    ce_narrow : int array;
    ce_wide : Bitvec.t array;
  }

  (* Reusable nonblocking-update buffer: parallel growable arrays, so a
     clock edge allocates nothing in steady state.  Kinds: 0 narrow
     reg, 1 wide reg, 2 narrow mem cell, 3 wide mem cell. *)
  type ubuf = {
    mutable u_len : int;
    mutable u_kind : int array;
    mutable u_a : int array;  (* reg: value-array index; mem: m_pos *)
    mutable u_b : int array;  (* reg: slot id; mem: cell address *)
    mutable u_iv : int array;
    mutable u_bv : Bitvec.t array;
  }

  let dummy_bv = Bitvec.zero 1

  let push buf kind a b iv bv =
    let n = buf.u_len in
    if n = Array.length buf.u_kind then begin
      let grow ar z =
        let nar = Array.make (2 * n) z in
        Array.blit ar 0 nar 0 n;
        nar
      in
      buf.u_kind <- grow buf.u_kind 0;
      buf.u_a <- grow buf.u_a 0;
      buf.u_b <- grow buf.u_b 0;
      buf.u_iv <- grow buf.u_iv 0;
      buf.u_bv <- grow buf.u_bv dummy_bv
    end;
    buf.u_kind.(n) <- kind;
    buf.u_a.(n) <- a;
    buf.u_b.(n) <- b;
    buf.u_iv.(n) <- iv;
    buf.u_bv.(n) <- bv;
    buf.u_len <- n + 1

  type rt = {
    mutable cycle : int;
    mutable failures : assertion_failure list;
    mutable settles : int;
    mutable evaluated : int;
    mutable skipped : int;
    mutable fast_evaluated : int;
  }

  type t = {
    env : cenv;
    rt : rt;
    buf : ubuf;
    mems : mem array;
    assign_eval : (unit -> unit) array;  (* topo order: eval, store, mark *)
    assign_fast : bool array;  (* target is narrow (unboxed) *)
    dirty : bool array;  (* per assign, same indexing *)
    deps : int array array;  (* slot id -> assign indices reading it *)
    always : (unit -> unit) array;
    inputs : string list;
    outputs : string list;
    n_narrow_signals : int;
    n_wide_signals : int;
  }

  (* ---------------------------------------------------------------- *)
  (* Expression compilation                                            *)

  let sig_width env name =
    match Hashtbl.find_opt env.ce_signals name with
    | Some s -> s.sl_width
    | None -> (
      match Hashtbl.find_opt env.ce_mems name with
      | Some m -> m.m_elem_width
      | None -> fail "unknown signal %s" name)

  let natural env expr = natural_width ~signal_width:(sig_width env) expr

  (* [compile_int env ~width e] compiles [e] to a closure producing its
     value at context [width] (1 <= width <= 63) as a masked native
     int.  [compile_bv] is the general boxed path for any width; each
     evaluation point picks a path by its own evaluation width, so a
     narrow context can still dive into wide subexpressions and vice
     versa. *)
  let rec compile_int env ~width e : unit -> int =
    let mw = mask width in
    match e with
    | Const b ->
      let v = Bitvec.to_int_trunc (Bitvec.resize ~width b) in
      fun () -> v
    | Ref name -> (
      match Hashtbl.find_opt env.ce_signals name with
      | None -> fail "read of unknown signal %s" name
      | Some s ->
        let narrow = env.ce_narrow and wide = env.ce_wide in
        let idx = s.sl_idx in
        if s.sl_width > 63 then fun () -> Bitvec.to_int_trunc wide.(idx) land mw
        else if s.sl_width <= width then fun () -> narrow.(idx)
        else fun () -> narrow.(idx) land mw)
    | Index (name, addr) -> (
      match Hashtbl.find_opt env.ce_mems name with
      | None -> fail "indexing non-memory %s" name
      | Some m ->
        let fa = compile_addr env addr in
        (match m.m_store with
        | M_narrow cells ->
          let depth = Array.length cells in
          if m.m_elem_width <= width then
            fun () ->
              let a = fa () in
              if a >= 0 && a < depth then cells.(a) else 0
          else
            fun () ->
              let a = fa () in
              if a >= 0 && a < depth then cells.(a) land mw else 0
        | M_wide cells ->
          let depth = Array.length cells in
          fun () ->
            let a = fa () in
            if a >= 0 && a < depth then Bitvec.to_int_trunc cells.(a) land mw
            else 0))
    | Slice (e1, hi, lo) ->
      let wi = max (hi + 1) (natural env e1) in
      let m = mask (min (hi - lo + 1) width) in
      if wi <= 63 then
        let f = compile_int env ~width:wi e1 in
        fun () -> (f () lsr lo) land m
      else
        let f = compile_bv env ~width:wi e1 in
        fun () -> Bitvec.to_int_trunc (Bitvec.extract ~hi ~lo (f ())) land m
    | Unop (Not, e1) ->
      let f = compile_int env ~width e1 in
      fun () -> lnot (f ()) land mw
    | Unop (Red_or, e1) ->
      let f = compile_nonzero env e1 in
      fun () -> if f () then 1 else 0
    | Unop (Red_and, e1) -> (
      let wn = max 1 (natural env e1) in
      if wn <= 63 then
        let f = compile_int env ~width:wn e1 in
        let all = mask wn in
        fun () -> if f () = all then 1 else 0
      else
        let f = compile_bv env ~width:wn e1 in
        let all = Bitvec.ones wn in
        fun () -> if Bitvec.equal (f ()) all then 1 else 0)
    | Binop (((Add | Sub | Mul | And | Or | Xor) as op), a, b) -> (
      let fa = compile_int env ~width a and fb = compile_int env ~width b in
      match op with
      | Add -> fun () -> (fa () + fb ()) land mw
      | Sub -> fun () -> (fa () - fb ()) land mw
      | Mul -> fun () -> fa () * fb () land mw
      | And -> fun () -> fa () land fb ()
      | Or -> fun () -> fa () lor fb ()
      | Xor -> fun () -> fa () lxor fb ()
      | _ -> assert false)
    | Binop (Shl, a, b) ->
      let fa = compile_int env ~width a and fk = compile_shift env b in
      fun () ->
        let k = fk () in
        if k < 0 || k >= width then 0 else (fa () lsl k) land mw
    | Binop (Shr, a, b) ->
      let fa = compile_int env ~width a and fk = compile_shift env b in
      fun () ->
        let k = fk () in
        if k < 0 || k >= width then 0 else fa () lsr k
    | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) -> (
      let cmp = compile_compare env a b in
      match op with
      | Lt -> fun () -> if cmp () < 0 then 1 else 0
      | Le -> fun () -> if cmp () <= 0 then 1 else 0
      | Gt -> fun () -> if cmp () > 0 then 1 else 0
      | Ge -> fun () -> if cmp () >= 0 then 1 else 0
      | Eq -> fun () -> if cmp () = 0 then 1 else 0
      | Ne -> fun () -> if cmp () <> 0 then 1 else 0
      | _ -> assert false)
    | Binop (Log_and, a, b) ->
      let fa = compile_nonzero env a and fb = compile_nonzero env b in
      fun () -> if fa () && fb () then 1 else 0
    | Binop (Log_or, a, b) ->
      let fa = compile_nonzero env a and fb = compile_nonzero env b in
      fun () -> if fa () || fb () then 1 else 0
    | Ternary (c, a, b) ->
      let fc = compile_nonzero env c in
      let fa = compile_int env ~width a and fb = compile_int env ~width b in
      fun () -> if fc () then fa () else fb ()
    | Concat [] -> fail "empty concatenation"
    | Concat es ->
      let widths = List.map (fun e -> max 1 (natural env e)) es in
      let total = List.fold_left ( + ) 0 widths in
      if total <= 63 then begin
        (* Part i occupies bits [shift_i, shift_i + w_i); a lone
           width-63 part gets shift 0, so [lsl] stays in range. *)
        let fs = Array.of_list (List.map2 (fun e w -> compile_int env ~width:w e) es widths) in
        let ws = Array.of_list widths in
        let n = Array.length fs in
        let shifts = Array.make n 0 in
        let acc = ref 0 in
        for i = n - 1 downto 0 do
          shifts.(i) <- !acc;
          acc := !acc + ws.(i)
        done;
        let combine () =
          let v = ref 0 in
          for i = 0 to n - 1 do
            v := !v lor (fs.(i) () lsl shifts.(i))
          done;
          !v
        in
        if width >= total then combine else fun () -> combine () land mw
      end
      else
        let f = compile_concat_bv env es widths in
        fun () -> Bitvec.to_int_trunc (f ()) land mw

  and compile_bv env ~width e : unit -> Bitvec.t =
    match e with
    | Const b ->
      let v = Bitvec.resize ~width b in
      fun () -> v
    | Ref name -> (
      match Hashtbl.find_opt env.ce_signals name with
      | None -> fail "read of unknown signal %s" name
      | Some s ->
        let narrow = env.ce_narrow and wide = env.ce_wide in
        let idx = s.sl_idx in
        if s.sl_width > 63 then
          if s.sl_width = width then fun () -> wide.(idx)
          else fun () -> Bitvec.resize ~width wide.(idx)
        else
          let sw = s.sl_width in
          fun () -> Bitvec.resize ~width (Bitvec.of_int ~width:sw narrow.(idx)))
    | Index (name, addr) -> (
      match Hashtbl.find_opt env.ce_mems name with
      | None -> fail "indexing non-memory %s" name
      | Some m ->
        let fa = compile_addr env addr in
        let oob = Bitvec.zero width in
        (match m.m_store with
        | M_narrow cells ->
          let depth = Array.length cells and ew = m.m_elem_width in
          fun () ->
            let a = fa () in
            if a >= 0 && a < depth then
              Bitvec.resize ~width (Bitvec.of_int ~width:ew cells.(a))
            else oob
        | M_wide cells ->
          let depth = Array.length cells in
          fun () ->
            let a = fa () in
            if a >= 0 && a < depth then Bitvec.resize ~width cells.(a) else oob))
    | Slice (e1, hi, lo) ->
      let wi = max (hi + 1) (natural env e1) in
      if wi <= 63 then
        let f = compile_int env ~width:wi e1 in
        let sw = hi - lo + 1 in
        let m = mask sw in
        fun () -> Bitvec.resize ~width (Bitvec.of_int ~width:sw ((f () lsr lo) land m))
      else
        let f = compile_bv env ~width:wi e1 in
        fun () -> Bitvec.resize ~width (Bitvec.extract ~hi ~lo (f ()))
    | Unop (Not, e1) ->
      let f = compile_bv env ~width e1 in
      fun () -> Bitvec.lognot (f ())
    | Unop (Red_or, e1) ->
      let f = compile_nonzero env e1 in
      let tru = Bitvec.resize ~width (Bitvec.of_bool true) and fls = Bitvec.zero width in
      fun () -> if f () then tru else fls
    | Unop (Red_and, e1) -> (
      let wn = max 1 (natural env e1) in
      let tru = Bitvec.resize ~width (Bitvec.of_bool true) and fls = Bitvec.zero width in
      if wn <= 63 then
        let f = compile_int env ~width:wn e1 in
        let all = mask wn in
        fun () -> if f () = all then tru else fls
      else
        let f = compile_bv env ~width:wn e1 in
        let all = Bitvec.ones wn in
        fun () -> if Bitvec.equal (f ()) all then tru else fls)
    | Binop (((Add | Sub | Mul | And | Or | Xor) as op), a, b) ->
      let fa = compile_bv env ~width a and fb = compile_bv env ~width b in
      let g =
        match op with
        | Add -> Bitvec.add
        | Sub -> Bitvec.sub
        | Mul -> Bitvec.mul
        | And -> Bitvec.logand
        | Or -> Bitvec.logor
        | Xor -> Bitvec.logxor
        | _ -> assert false
      in
      fun () -> g (fa ()) (fb ())
    | Binop (Shl, a, b) ->
      let fa = compile_bv env ~width a and fk = compile_shift env b in
      fun () ->
        let k = fk () in
        let k = if k < 0 || k > width then width else k in
        Bitvec.shift_left (fa ()) k
    | Binop (Shr, a, b) ->
      let fa = compile_bv env ~width a and fk = compile_shift env b in
      fun () ->
        let k = fk () in
        let k = if k < 0 || k > width then width else k in
        Bitvec.shift_right_logical (fa ()) k
    | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
      let cmp = compile_compare env a b in
      let tru = Bitvec.resize ~width (Bitvec.of_bool true) and fls = Bitvec.zero width in
      let test =
        match op with
        | Lt -> fun c -> c < 0
        | Le -> fun c -> c <= 0
        | Gt -> fun c -> c > 0
        | Ge -> fun c -> c >= 0
        | Eq -> fun c -> c = 0
        | Ne -> fun c -> c <> 0
        | _ -> assert false
      in
      fun () -> if test (cmp ()) then tru else fls
    | Binop (Log_and, a, b) ->
      let fa = compile_nonzero env a and fb = compile_nonzero env b in
      let tru = Bitvec.resize ~width (Bitvec.of_bool true) and fls = Bitvec.zero width in
      fun () -> if fa () && fb () then tru else fls
    | Binop (Log_or, a, b) ->
      let fa = compile_nonzero env a and fb = compile_nonzero env b in
      let tru = Bitvec.resize ~width (Bitvec.of_bool true) and fls = Bitvec.zero width in
      fun () -> if fa () || fb () then tru else fls
    | Ternary (c, a, b) ->
      let fc = compile_nonzero env c in
      let fa = compile_bv env ~width a and fb = compile_bv env ~width b in
      fun () -> if fc () then fa () else fb ()
    | Concat [] -> fail "empty concatenation"
    | Concat es ->
      let widths = List.map (fun e -> max 1 (natural env e)) es in
      let total = List.fold_left ( + ) 0 widths in
      let f = compile_concat_bv env es widths in
      if total = width then f else fun () -> Bitvec.resize ~width (f ())

  (* Concatenation as a [Bitvec] of width = sum of part widths; the
     first part occupies the high bits. *)
  and compile_concat_bv env es widths =
    let fs =
      List.map2
        (fun e w ->
          if w <= 63 then
            let f = compile_int env ~width:w e in
            fun () -> Bitvec.of_int ~width:w (f ())
          else compile_bv env ~width:w e)
        es widths
    in
    match fs with
    | [] -> fail "empty concatenation"
    | f0 :: rest -> fun () -> List.fold_left (fun acc f -> Bitvec.concat acc (f ())) (f0 ()) rest

  (* Nonzero test at the expression's natural width. *)
  and compile_nonzero env e =
    let wn = max 1 (natural env e) in
    if wn <= 63 then
      let f = compile_int env ~width:wn e in
      fun () -> f () <> 0
    else
      let f = compile_bv env ~width:wn e in
      fun () -> not (Bitvec.is_zero (f ()))

  (* Unsigned comparison at the wider operand's natural width. *)
  and compile_compare env a b =
    let w0 = max 1 (max (natural env a) (natural env b)) in
    if w0 <= 63 then
      let fa = compile_int env ~width:w0 a and fb = compile_int env ~width:w0 b in
      fun () -> ucmp (fa ()) (fb ())
    else
      let fa = compile_bv env ~width:w0 a and fb = compile_bv env ~width:w0 b in
      fun () -> Bitvec.compare (fa ()) (fb ())

  (* Shift amount / memory address as a non-negative int; a negative
     result means "too large to represent" and is treated as
     out-of-range by the callers (the reference walker raises on such
     values instead — they are unreachable from generated designs). *)
  and compile_shift env b =
    let wb = max 1 (natural env b) in
    if wb <= 63 then compile_int env ~width:wb b
    else
      let f = compile_bv env ~width:wb b in
      fun () -> ( match Bitvec.to_int_opt (f ()) with Some k -> k | None -> -1)

  and compile_addr env addr = compile_shift env addr

  (* ---------------------------------------------------------------- *)
  (* Statement compilation (always @(posedge clk) bodies)              *)

  let rec compile_stmt env ~rt ~buf stmt : unit -> unit =
    match stmt with
    | Nonblocking (Lref name, e) -> (
      match Hashtbl.find_opt env.ce_signals name with
      | None -> fail "unknown signal %s" name
      | Some s ->
        let idx = s.sl_idx and id = s.sl_id in
        if s.sl_width <= 63 then
          let f = compile_int env ~width:s.sl_width e in
          fun () -> push buf 0 idx id (f ()) dummy_bv
        else
          let f = compile_bv env ~width:s.sl_width e in
          fun () -> push buf 1 idx id 0 (f ()))
    | Nonblocking (Lindex (name, addr), e) -> (
      match Hashtbl.find_opt env.ce_mems name with
      | None -> fail "write to non-memory %s" name
      | Some m -> (
        let fa = compile_addr env addr in
        let pos = m.m_pos in
        match m.m_store with
        | M_narrow _ ->
          let f = compile_int env ~width:m.m_elem_width e in
          fun () ->
            let a = fa () in
            push buf 2 pos a (f ()) dummy_bv
        | M_wide _ ->
          let f = compile_bv env ~width:m.m_elem_width e in
          fun () ->
            let a = fa () in
            push buf 3 pos a 0 (f ())))
    | If (c, then_s, else_s) ->
      let fc = compile_nonzero env c in
      let ft = Array.of_list (List.map (compile_stmt env ~rt ~buf) then_s) in
      let fe = Array.of_list (List.map (compile_stmt env ~rt ~buf) else_s) in
      fun () ->
        let arm = if fc () then ft else fe in
        for i = 0 to Array.length arm - 1 do
          arm.(i) ()
        done
    | Assert_stmt { cond; message } ->
      let fc = compile_nonzero env cond in
      fun () ->
        if not (fc ()) then
          rt.failures <- { at_cycle = rt.cycle; message } :: rt.failures

  (* ---------------------------------------------------------------- *)
  (* Construction                                                      *)

  let create (flat : Flatten.flat) =
    let sig_tbl = Hashtbl.create 256 in
    let mem_tbl = Hashtbl.create 16 in
    let decls = ref [] in
    let mem_decls = ref [] in
    let assigns_rev = ref [] in
    let always_rev = ref [] in
    List.iter
      (fun item ->
        match item with
        | Wire_decl { name; width } -> decls := (name, width, false) :: !decls
        | Reg_decl { name; width } -> decls := (name, width, true) :: !decls
        | Mem_decl { name; width; depth; _ } -> mem_decls := (name, width, depth) :: !mem_decls
        | Assign { target; expr } -> assigns_rev := (target, expr) :: !assigns_rev
        | Always_ff stmts -> always_rev := stmts :: !always_rev
        | Comment _ -> ()
        | Instance _ -> fail "simulator requires a flattened design")
      flat.flat_items;
    let decls = List.rev !decls in
    let mem_decls = List.rev !mem_decls in
    let assign_list = List.rev !assigns_rev in
    let always_stmts = List.concat (List.rev !always_rev) in
    (* Slot allocation: narrow signals share one int array, wide ones a
       Bitvec array; every signal and memory also gets a dense id in
       the dependency graph. *)
    let n_narrow = ref 0 and n_wide = ref 0 and n_ids = ref 0 in
    let wide_widths = ref [] in
    List.iter
      (fun (name, width, is_reg) ->
        let idx =
          if width <= 63 then (
            let i = !n_narrow in
            incr n_narrow;
            i)
          else (
            let i = !n_wide in
            incr n_wide;
            wide_widths := width :: !wide_widths;
            i)
        in
        let id = !n_ids in
        incr n_ids;
        Hashtbl.replace sig_tbl name
          { sl_name = name; sl_width = width; sl_is_reg = is_reg; sl_idx = idx; sl_id = id })
      decls;
    let mems =
      Array.of_list
        (List.mapi
           (fun pos (name, width, depth) ->
             let id = !n_ids in
             incr n_ids;
             let store =
               if width <= 63 then M_narrow (Array.make depth 0)
               else M_wide (Array.make depth (Bitvec.zero width))
             in
             let m = { m_name = name; m_elem_width = width; m_store = store; m_id = id; m_pos = pos } in
             Hashtbl.replace mem_tbl name m;
             m)
           mem_decls)
    in
    let narrow = Array.make (max 1 !n_narrow) 0 in
    let wide = Array.of_list (List.rev_map (fun w -> Bitvec.zero w) !wide_widths) in
    let env = { ce_signals = sig_tbl; ce_mems = mem_tbl; ce_narrow = narrow; ce_wide = wide } in
    let is_comb name =
      match Hashtbl.find_opt sig_tbl name with
      | Some s -> not s.sl_is_reg
      | None -> false
    in
    let sorted = Array.of_list (topo_sort_assigns ~is_comb assign_list) in
    let n_assigns = Array.length sorted in
    (* Dependency graph: which assigns (by topo index) read each slot.
       Dependents of an assign's own target always sit later in topo
       order, so one forward pass over the dirty set per settle is a
       fixpoint. *)
    let dep_lists = Array.make (max 1 !n_ids) [] in
    Array.iteri
      (fun j (_, expr) ->
        List.iter
          (fun name ->
            match Hashtbl.find_opt sig_tbl name with
            | Some s -> dep_lists.(s.sl_id) <- j :: dep_lists.(s.sl_id)
            | None -> ())
          (wire_deps expr []);
        List.iter
          (fun name ->
            match Hashtbl.find_opt mem_tbl name with
            | Some m -> dep_lists.(m.m_id) <- j :: dep_lists.(m.m_id)
            | None -> ())
          (mem_reads expr []))
      sorted;
    let deps = Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) dep_lists in
    let dirty = Array.make (max 1 n_assigns) true in
    let rt = { cycle = 0; failures = []; settles = 0; evaluated = 0; skipped = 0; fast_evaluated = 0 } in
    let buf =
      {
        u_len = 0;
        u_kind = Array.make 64 0;
        u_a = Array.make 64 0;
        u_b = Array.make 64 0;
        u_iv = Array.make 64 0;
        u_bv = Array.make 64 dummy_bv;
      }
    in
    let assign_fast =
      Array.map
        (fun (target, _) ->
          match Hashtbl.find_opt sig_tbl target with
          | Some s -> s.sl_width <= 63
          | None -> false)
        sorted
    in
    let assign_eval =
      Array.map
        (fun (target, expr) ->
          match Hashtbl.find_opt sig_tbl target with
          | None -> fail "assign to undeclared signal %s" target
          | Some s ->
            let succs = deps.(s.sl_id) in
            let idx = s.sl_idx in
            if s.sl_width <= 63 then begin
              let f = compile_int env ~width:s.sl_width expr in
              fun () ->
                let v = f () in
                if narrow.(idx) <> v then begin
                  narrow.(idx) <- v;
                  Array.iter (fun j -> dirty.(j) <- true) succs
                end
            end
            else begin
              let f = compile_bv env ~width:s.sl_width expr in
              fun () ->
                let v = f () in
                if not (Bitvec.equal wide.(idx) v) then begin
                  wide.(idx) <- v;
                  Array.iter (fun j -> dirty.(j) <- true) succs
                end
            end)
        sorted
    in
    let always = Array.of_list (List.map (compile_stmt env ~rt ~buf) always_stmts) in
    {
      env;
      rt;
      buf;
      mems;
      assign_eval;
      assign_fast;
      dirty;
      deps;
      always;
      inputs = flat.flat_inputs;
      outputs = flat.flat_outputs;
      n_narrow_signals = !n_narrow;
      n_wide_signals = !n_wide;
    }

  (* ---------------------------------------------------------------- *)
  (* Cycle execution                                                   *)

  let settle t =
    !settle_fault_hook ();
    let rt = t.rt in
    rt.settles <- rt.settles + 1;
    let dirty = t.dirty and evalf = t.assign_eval and fast = t.assign_fast in
    for i = 0 to Array.length evalf - 1 do
      if dirty.(i) then begin
        dirty.(i) <- false;
        rt.evaluated <- rt.evaluated + 1;
        if fast.(i) then rt.fast_evaluated <- rt.fast_evaluated + 1;
        evalf.(i) ()
      end
      else rt.skipped <- rt.skipped + 1
    done

  let mark_slot t id = Array.iter (fun j -> t.dirty.(j) <- true) t.deps.(id)

  (* Commit in reverse push order, replicating the reference walker's
     list-accumulated semantics exactly: with several updates to one
     target in a cycle, the first statement executed wins, and
     out-of-range memory writes report in that same order. *)
  let commit t =
    let b = t.buf and narrow = t.env.ce_narrow and wide = t.env.ce_wide in
    for i = b.u_len - 1 downto 0 do
      match b.u_kind.(i) with
      | 0 ->
        let idx = b.u_a.(i) and v = b.u_iv.(i) in
        if narrow.(idx) <> v then begin
          narrow.(idx) <- v;
          mark_slot t b.u_b.(i)
        end
      | 1 ->
        let idx = b.u_a.(i) and v = b.u_bv.(i) in
        if not (Bitvec.equal wide.(idx) v) then begin
          wide.(idx) <- v;
          mark_slot t b.u_b.(i)
        end
      | k -> (
        let m = t.mems.(b.u_a.(i)) and a = b.u_b.(i) in
        let oob depth =
          if a >= 0 && a < depth then false
          else begin
            t.rt.failures <-
              { at_cycle = t.rt.cycle; message = Printf.sprintf "write past end of %s" m.m_name }
              :: t.rt.failures;
            true
          end
        in
        match m.m_store with
        | M_narrow cells ->
          assert (k = 2);
          let v = b.u_iv.(i) in
          if (not (oob (Array.length cells))) && cells.(a) <> v then begin
            cells.(a) <- v;
            mark_slot t m.m_id
          end
        | M_wide cells ->
          let v = b.u_bv.(i) in
          if (not (oob (Array.length cells))) && not (Bitvec.equal cells.(a) v) then begin
            cells.(a) <- v;
            mark_slot t m.m_id
          end)
    done;
    b.u_len <- 0

  let clock t =
    t.buf.u_len <- 0;
    let always = t.always in
    for i = 0 to Array.length always - 1 do
      always.(i) ()
    done;
    commit t;
    t.rt.cycle <- t.rt.cycle + 1

  let step t =
    settle t;
    clock t

  let settle_only t = settle t

  let set_input t name v =
    match Hashtbl.find_opt t.env.ce_signals name with
    | None -> fail "unknown input %s" name
    | Some s ->
      if s.sl_width <= 63 then begin
        let v = Bitvec.to_int_trunc (Bitvec.resize ~width:s.sl_width v) in
        if t.env.ce_narrow.(s.sl_idx) <> v then begin
          t.env.ce_narrow.(s.sl_idx) <- v;
          mark_slot t s.sl_id
        end
      end
      else begin
        let v = Bitvec.resize ~width:s.sl_width v in
        if not (Bitvec.equal t.env.ce_wide.(s.sl_idx) v) then begin
          t.env.ce_wide.(s.sl_idx) <- v;
          mark_slot t s.sl_id
        end
      end

  let peek t name =
    match Hashtbl.find_opt t.env.ce_signals name with
    | Some s ->
      if s.sl_width <= 63 then Bitvec.of_int ~width:s.sl_width t.env.ce_narrow.(s.sl_idx)
      else t.env.ce_wide.(s.sl_idx)
    | None -> fail "unknown signal %s" name

  let signal_width t name = sig_width t.env name

  let failures t = List.rev t.rt.failures
  let cycle t = t.rt.cycle

  let signal_names t =
    Hashtbl.fold (fun name s acc -> (name, s.sl_width) :: acc) t.env.ce_signals []
    |> List.sort compare

  let eval_bool t expr = compile_nonzero t.env expr ()

  let stats t =
    {
      st_cycles = t.rt.cycle;
      st_settles = t.rt.settles;
      st_assigns_evaluated = t.rt.evaluated;
      st_assigns_skipped = t.rt.skipped;
      st_fastpath_evaluated = t.rt.fast_evaluated;
      st_narrow_signals = t.n_narrow_signals;
      st_wide_signals = t.n_wide_signals;
    }
end

(* ================================================================== *)
(* Engine dispatch: the compiled engine is the default; callers pick    *)
(* the reference walker with [create ~engine:`Reference].               *)

type engine = [ `Compiled | `Reference ]

type t = C of Compiled.t | R of Reference.t

let create ?(engine = `Compiled) flat =
  match engine with
  | `Compiled -> C (Compiled.create flat)
  | `Reference -> R (Reference.create flat)

let signal_width t name =
  match t with C c -> Compiled.signal_width c name | R r -> Reference.signal_width r name

let set_input t name v =
  match t with C c -> Compiled.set_input c name v | R r -> Reference.set_input r name v

let peek t name = match t with C c -> Compiled.peek c name | R r -> Reference.peek r name
let clock t = match t with C c -> Compiled.clock c | R r -> Reference.clock r
let step t = match t with C c -> Compiled.step c | R r -> Reference.step r

let settle_only t =
  match t with C c -> Compiled.settle_only c | R r -> Reference.settle_only r

let failures t = match t with C c -> Compiled.failures c | R r -> Reference.failures r
let cycle t = match t with C c -> Compiled.cycle c | R r -> Reference.cycle r

let signal_names t =
  match t with C c -> Compiled.signal_names c | R r -> Reference.signal_names r

let eval_bool t expr =
  match t with C c -> Compiled.eval_bool c expr | R r -> Reference.eval_bool r expr

let stats t = match t with C c -> Compiled.stats c | R r -> Reference.stats r

(* Report this run's statistics into the innermost [Pass.with_counters]
   collector (a no-op outside one), so `hirc --stats` and the Chrome
   traces cover simulation alongside the compiler passes. *)
let record_stats t =
  let s = stats t in
  let c n v = Hir_ir.Pass.record_counter ~n:v ("sim." ^ n) in
  c "cycles" s.st_cycles;
  c "settles" s.st_settles;
  c "assigns_evaluated" s.st_assigns_evaluated;
  c "assigns_skipped" s.st_assigns_skipped;
  c "fastpath_evaluated" s.st_fastpath_evaluated;
  c "narrow_signals" s.st_narrow_signals;
  c "wide_signals" s.st_wide_signals
