lib/kernels/elementwise_max.ml: Array Bitvec Builder Hir_dialect Hir_ir Interp Typ Types Util
