examples/precision_optimization.mli:
