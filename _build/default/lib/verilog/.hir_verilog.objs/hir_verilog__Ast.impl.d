lib/verilog/ast.ml: Bitvec List
