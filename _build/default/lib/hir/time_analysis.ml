(* Birth-time analysis (paper Section 4.2, 6.1).

   Every SSA value of primitive type is valid at exactly one time
   instant within its lexical scope, expressed as a constant delta from
   a root time variable (a function's %t or a loop iteration's %ti).
   This module computes, for every value in a function:

     - [Always]      compile-time constants, valid at any instant
     - [At (t, d)]   valid exactly at root time [t] plus [d] cycles
     - [Time (t, d)] a !hir.time value equal to root [t] plus [d]
     - [Mem]         memref ports (persistent resources, no birth)

   plus the ancestry relation between time roots: the iteration time of
   a loop descends from the root at which the loop itself is scheduled.
   A value born from an ancestor root is *stable* for the whole
   lifetime of the descendant's scope (e.g. the outer loop's induction
   variable %i is stable during the inner j-loop of the matrix
   transpose), which is what makes such cross-scope uses legal. *)

open Hir_ir

type birth =
  | Always
  | At of Ir.value * int
  | At_stable of Ir.value * int
      (** Born at an instant but physically held for the remainder of
          the enclosing scope: loop induction variables, function
          arguments, and pure combinational functions of those.  Only
          such values may be consumed from a descendant time domain —
          a mem_read result or delay output lives on a wire that is
          reused, so it is [At], never [At_stable]. *)
  | Time of Ir.value * int
  | Mem

type t = {
  births : (int, birth) Hashtbl.t;  (* value id -> birth *)
  parents : (int, Ir.value) Hashtbl.t;  (* time root id -> parent root *)
  starts : (int, Ir.value * int) Hashtbl.t;  (* scheduled op id -> start *)
}

let create () =
  { births = Hashtbl.create 128; parents = Hashtbl.create 16; starts = Hashtbl.create 64 }

let birth t v = Hashtbl.find_opt t.births (Ir.Value.id v)
let set_birth t v b = Hashtbl.replace t.births (Ir.Value.id v) b

let set_parent t ~root ~parent = Hashtbl.replace t.parents (Ir.Value.id root) parent

let op_start t op = Hashtbl.find_opt t.starts op.Ir.op_id

(* Is [anc] an ancestor root of [root] (strictly)? *)
let rec is_ancestor_root t ~anc ~root =
  match Hashtbl.find_opt t.parents (Ir.Value.id root) with
  | None -> false
  | Some p -> Ir.Value.equal p anc || is_ancestor_root t ~anc ~root:p

(* Resolve a !hir.time operand to (root, delta). *)
let resolve_time t v =
  match birth t v with
  | Some (Time (root, d)) -> Some (root, d)
  | _ -> None

(* How an operand relates to an op start time. *)
type operand_timing =
  | Exact  (* born exactly at the op's start *)
  | Stable  (* constant, memref, or a held value from an ancestor root *)
  | Transient  (* ancestor root, but the wire is not held (bus reuse) *)
  | Mismatch of int * int  (* (found_delta, expected_delta), same root *)
  | Foreign  (* born from an unrelated time root *)
  | Unresolved

let classify_operand t ~start:(root, delta) v =
  match birth t v with
  | None -> Unresolved
  | Some Always -> Stable
  | Some Mem -> Stable
  | Some (Time (r, d)) ->
    if Ir.Value.equal r root then if d = delta then Exact else Mismatch (d, delta)
    else if is_ancestor_root t ~anc:r ~root then Stable
    else Foreign
  | Some (At (r, d)) ->
    if Ir.Value.equal r root then if d = delta then Exact else Mismatch (d, delta)
    else if is_ancestor_root t ~anc:r ~root then Transient
    else Foreign
  | Some (At_stable (r, d)) ->
    if Ir.Value.equal r root then if d = delta then Exact else Mismatch (d, delta)
    else if is_ancestor_root t ~anc:r ~root then Stable
    else Foreign

(* Location of the definition of [v], for "Prior definition here"
   notes. *)
let def_location v =
  match v.Ir.v_def with
  | Ir.Op_result (op, _) -> Ir.Op.loc op
  | Ir.Block_arg (b, _) -> (
    match Ir.Block.parent b with
    | Some r -> (
      match Ir.Region.parent r with Some op -> Ir.Op.loc op | None -> Location.unknown)
    | None -> Location.unknown)

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)

(* Emit callback lets the schedule verifier report while the analysis
   proceeds; a [None] engine analyses silently (used by codegen and the
   interpreter, which run on verified IR). *)

let analyze ?engine func =
  let t = create () in
  let report f = match engine with Some e -> f e | None -> () in
  let describe_operand op i =
    (* A human label for operand [i] of [op], matching the paper's
       diagnostics: addresses of memory ops are "address N", the data
       operand is "value", binary ops have left/right operands. *)
    let name = Ir.Op.name op in
    match name with
    | "hir.mem_read" ->
      if i = 0 then "memref" else Printf.sprintf "address %d" (i - 1)
    | "hir.mem_write" ->
      if i = 0 then "value"
      else if i = 1 then "memref"
      else Printf.sprintf "address %d" (i - 2)
    | "hir.delay" -> "input"
    | "hir.call" -> Printf.sprintf "argument %d" i
    | "hir.return" -> Printf.sprintf "returned value %d" i
    | _ when i = 0 -> "left operand"
    | _ when i = 1 -> "right operand"
    | _ -> Printf.sprintf "operand %d" i
  in
  let check_operand op i v ~start =
    match classify_operand t ~start v with
    | Exact | Stable -> ()
    | Unresolved -> ()
    | Mismatch (found, expected) ->
      report (fun e ->
          Diagnostic.Engine.error e (Ir.Op.loc op)
            ~notes:[ Diagnostic.note ~loc:(def_location v) "Prior definition here." ]
            (Printf.sprintf "Schedule error: mismatched delay (%d vs %d) in %s!"
               found expected (describe_operand op i)))
    | Foreign ->
      report (fun e ->
          Diagnostic.Engine.error e (Ir.Op.loc op)
            ~notes:[ Diagnostic.note ~loc:(def_location v) "Prior definition here." ]
            (Printf.sprintf
               "Schedule error: %s is scheduled in an unrelated time domain!"
               (describe_operand op i)))
    | Transient ->
      report (fun e ->
          Diagnostic.Engine.error e (Ir.Op.loc op)
            ~notes:[ Diagnostic.note ~loc:(def_location v) "Prior definition here." ]
            (Printf.sprintf
               "Schedule error: %s is not held across time domains (its wire may be \
                reused); insert a register or restructure the schedule!"
               (describe_operand op i)))
  in
  (* Seed: function arguments. *)
  let time_root = Ops.func_time_arg func in
  set_birth t time_root (Time (time_root, 0));
  let arg_delays = Ops.func_arg_delays func in
  List.iteri
    (fun i v ->
      let b =
        match Ir.Value.typ v with
        | Types.Memref _ -> Mem
        | Types.Const -> Always
        | _ -> At_stable (time_root, List.nth_opt arg_delays i |> Option.value ~default:0)
      in
      set_birth t v b)
    (Ops.func_data_args func);
  (* Start time of a scheduled op from its time operand + offset. *)
  let sched_start op time_operand offset =
    match resolve_time t time_operand with
    | Some (root, d) ->
      let start = (root, d + offset) in
      Hashtbl.replace t.starts op.Ir.op_id start;
      Some start
    | None -> None
  in
  let rec walk_block block =
    List.iter walk_op (Ir.Block.ops block)
  and walk_op op =
    match Ir.Op.name op with
    | "hir.constant" -> set_birth t (Ir.Op.result op 0) Always
    | "hir.alloc" -> List.iter (fun r -> set_birth t r Mem) (Ir.Op.results op)
    | "hir.delay" -> (
      match sched_start op (Ops.delay_time op) (Ops.delay_offset op) with
      | None -> ()
      | Some ((root, d) as start) ->
        check_operand op 0 (Ops.delay_input op) ~start;
        set_birth t (Ir.Op.result op 0) (At (root, d + Ops.delay_by op)))
    | "hir.mem_read" -> (
      match sched_start op (Ops.mem_read_time op) (Ops.mem_read_offset op) with
      | None -> ()
      | Some ((root, d) as start) ->
        List.iteri
          (fun k idx -> check_operand op (1 + k) idx ~start)
          (Ops.mem_read_indices op);
        set_birth t (Ir.Op.result op 0) (At (root, d + Ops.mem_read_latency op)))
    | "hir.mem_write" -> (
      match sched_start op (Ops.mem_write_time op) (Ops.mem_write_offset op) with
      | None -> ()
      | Some start ->
        check_operand op 0 (Ops.mem_write_value op) ~start;
        List.iteri
          (fun k idx -> check_operand op (2 + k) idx ~start)
          (Ops.mem_write_indices op))
    | "hir.call" -> (
      match sched_start op (Ops.call_time op) (Ops.call_offset op) with
      | None -> ()
      | Some (root, d) ->
        let arg_delays = Ops.call_arg_delays op in
        List.iteri
          (fun i arg ->
            let delay = List.nth_opt arg_delays i |> Option.value ~default:0 in
            match Ir.Value.typ arg with
            | Types.Memref _ -> ()
            | _ -> check_operand op i arg ~start:(root, d + delay))
          (Ops.call_args op);
        let result_delays = Ops.call_result_delays op in
        List.iteri
          (fun j r ->
            let delay = List.nth_opt result_delays j |> Option.value ~default:0 in
            set_birth t r (At (root, d + delay)))
          (Ir.Op.results op))
    | "hir.for" -> (
      let iv = Ops.loop_induction_var op in
      let ti = Ops.loop_iter_time op in
      (match sched_start op (Ops.for_time op) (Ops.for_offset op) with
      | None -> ()
      | Some ((_, _) as start) ->
        check_operand op 0 (Ops.for_lb op) ~start;
        check_operand op 1 (Ops.for_ub op) ~start;
        check_operand op 2 (Ops.for_step op) ~start;
        (match resolve_time t (Ops.for_time op) with
        | Some (parent_root, _) -> set_parent t ~root:ti ~parent:parent_root
        | None -> ()));
      set_birth t ti (Time (ti, 0));
      set_birth t iv (At_stable (ti, 0));
      (* The loop's result time is a fresh root: completion is a
         dynamic event (it depends on the trip count). *)
      let tf = Ir.Op.result op 0 in
      set_birth t tf (Time (tf, 0));
      (match resolve_time t (Ops.for_time op) with
      | Some (parent_root, _) -> set_parent t ~root:tf ~parent:parent_root
      | None -> ());
      walk_block (Ops.loop_body op))
    | "hir.unroll_for" -> (
      let iv = Ir.Block.arg (Ops.loop_body op) 0 in
      let ti = Ir.Block.arg (Ops.loop_body op) 1 in
      (match resolve_time t (Ops.unroll_for_time op) with
      | Some (parent_root, _) ->
        Hashtbl.replace t.starts op.Ir.op_id
          (parent_root, snd (Option.get (resolve_time t (Ops.unroll_for_time op)))
                        + Ops.unroll_for_offset op);
        set_parent t ~root:ti ~parent:parent_root
      | None -> ());
      set_birth t iv Always;
      set_birth t ti (Time (ti, 0));
      let tf = Ir.Op.result op 0 in
      set_birth t tf (Time (tf, 0));
      (match resolve_time t (Ops.unroll_for_time op) with
      | Some (parent_root, _) -> set_parent t ~root:tf ~parent:parent_root
      | None -> ());
      walk_block (Ops.loop_body op))
    | "hir.yield" -> (
      match sched_start op (Ops.yield_time op) (Ops.yield_offset op) with
      | None -> () | Some _ -> ())
    | "hir.return" ->
      let result_delays = Ops.func_result_delays func in
      List.iteri
        (fun i v ->
          let delay = List.nth_opt result_delays i |> Option.value ~default:0 in
          check_operand op i v ~start:(time_root, delay))
        (Ir.Op.operands op)
    | name
      when List.mem name Ops.binary_compute_ops
           || List.mem name Ops.comparison_ops
           || List.mem name [ "hir.not"; "hir.select"; "hir.zext"; "hir.sext"; "hir.trunc" ]
      ->
      (* Combinational: all operands must agree on a single birth; the
         first operand with a concrete birth is the reference. *)
      let operands = Ir.Op.operands op in
      let concrete =
        List.filter_map
          (fun v ->
            match birth t v with
            | Some (At (r, d)) -> Some (v, r, d, false)
            | Some (At_stable (r, d)) -> Some (v, r, d, true)
            | _ -> None)
          operands
      in
      let result_birth =
        match concrete with
        | [] -> Always  (* all operands constant *)
        | (_, r0, d0, _) :: _ ->
          (* Reference: the most deeply nested root among operands. *)
          let ref_root, ref_delta =
            List.fold_left
              (fun (r, d) (_, r', d', _) ->
                if is_ancestor_root t ~anc:r ~root:r' then (r', d') else (r, d))
              (r0, d0) concrete
          in
          List.iteri
            (fun i v -> check_operand op i v ~start:(ref_root, ref_delta))
            operands;
          (* A combinational function of held values is itself held. *)
          if List.for_all (fun (_, _, _, s) -> s) concrete then
            At_stable (ref_root, ref_delta)
          else At (ref_root, ref_delta)
      in
      List.iter (fun res -> set_birth t res result_birth) (Ir.Op.results op)
    | _ ->
      (* Unknown op: results unresolved. *)
      ()
  in
  walk_block (Ops.func_body func);
  t

(* Initiation interval of a loop: the yield offset relative to the
   iteration start, when statically resolvable. *)
let loop_ii analysis loop_op =
  let yield_op = Ops.loop_yield loop_op in
  let ti =
    match Ir.Op.name loop_op with
    | "hir.for" -> Ops.loop_iter_time loop_op
    | _ -> Ir.Block.arg (Ops.loop_body loop_op) 1
  in
  match resolve_time analysis (Ops.yield_time yield_op) with
  | Some (root, d) when Ir.Value.equal root ti -> Some (d + Ops.yield_offset yield_op)
  | _ -> None
