examples/task_parallelism.ml: Hir_dialect Hir_ir Hir_kernels Interp List Ops Printf
