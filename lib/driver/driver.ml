(* The compilation service: one place that owns the end-to-end compile
   flow (parse/build → verify → pass pipeline → emit → print), shared
   by hirc, the benchmark harness and the tests.

   On top of the single-job flow it layers
     - a content-addressed cache (module [Cache]) consulted before any
       work is done and filled after a successful compile, with hit-path
       integrity verification and quarantine of damaged entries;
     - a multicore batch mode (module [Scheduler]) that compiles many
       jobs concurrently on OCaml 5 domains, with results returned in
       input order and byte-identical to a sequential run (each job
       compiles under [Ir.with_isolated_ids], so the id-derived names
       in the Verilog do not depend on scheduling);
     - per-job fault tolerance: wall-clock/work guards (module [Guard])
       that turn runaway compiles into structured timeout diagnostics,
       retry with capped exponential backoff for transient failures,
       and quarantine of repeat offenders — a batch always terminates
       with exactly one outcome per job, and partial results are
       returned, never discarded;
     - per-stage timing spans, counters and fault/degradation instants
       (module [Trace]) exportable as Chrome trace JSON. *)

open Hir_ir
open Hir_dialect

type source =
  | Text of { src_name : string; text : string }
  | Builder of { src_name : string; build : unit -> Ir.op * Ir.op }

type job = {
  src : source;
  pipeline : Pipeline.spec;
  top : string option;  (* ignored for [Builder] sources *)
}

type output = {
  job_name : string;
  top_name : string;  (* name of the chosen top-level function *)
  verilog : string;
  usage : Hir_resources.Model.usage;
  from_cache : bool;
  note : string option;  (* e.g. implicit top-function choice *)
  degradations : string list;
      (* fallbacks taken while still producing this output: cache
         faults survived, corrupt entries quarantined, legacy-pass
         fallbacks, retries.  Empty = clean compile. *)
  pass_stats : Pass.stat list;  (* empty on a cache hit *)
  seconds : float;  (* total job wall time *)
}

(* How a failure should be treated by the retry machinery:
   - [Transient]: infrastructure trouble (IO faults, injected faults) —
     retrying may succeed;
   - [Timeout]: the job exhausted its deadline/budget — retrying would
     spend the same budget again, so it fails permanently;
   - [Permanent]: the input is at fault (parse/verify/codegen errors) —
     no retry can help;
   - [Cancelled]: the caller withdrew the job (explicit cancel frame or
     client disconnect) — never retried, and reported as its own
     outcome, not as a failure of the input. *)
type failure_class = Transient | Timeout | Permanent | Cancelled

(* A failed job: every failure mode — lex/parse errors, verifier
   rejections, pass failures, codegen errors, timeouts, injected
   faults, even unexpected exceptions — is normalized to a list of
   located [Diagnostic]s, so callers (and the batch scheduler's
   domains) never see an exception escape [compile_job]. *)
type error = {
  err_job : string;  (* the job's source name *)
  err_class : failure_class;
  err_diags : Diagnostic.t list;  (* at least one *)
}

type outcome = (output, error) result

let error_to_string e =
  String.concat "\n" (List.map Diagnostic.to_string e.err_diags)

let source_name = function
  | Text { src_name; _ } -> src_name
  | Builder { src_name; _ } -> src_name

let job_of_text ?top ~pipeline ~name text =
  { src = Text { src_name = name; text }; pipeline; top }

let job_of_file ?top ~pipeline path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  job_of_text ?top ~pipeline ~name:path text

let job_of_builder ~pipeline ~name build =
  { src = Builder { src_name = name; build }; pipeline; top = None }

(* ------------------------------------------------------------------ *)
(* Single-job flow                                                     *)

exception Compile_failed of Diagnostic.t list

let fail_msg msg = raise (Compile_failed [ Diagnostic.error Location.unknown msg ])

let run_verifiers module_op =
  let engine = Diagnostic.Engine.create () in
  (match Verify.verify module_op with
  | Ok () -> ()
  | Error e -> List.iter (Diagnostic.Engine.emit engine) (Diagnostic.Engine.to_list e));
  if not (Diagnostic.Engine.has_errors engine) then
    Verify_schedule.verify_module engine module_op;
  if Diagnostic.Engine.has_errors engine then
    raise (Compile_failed (Diagnostic.Engine.to_list engine))

(* Top-function selection, with a note when the choice is implicit:
   with no [--top] and several functions we keep the historical
   behaviour (the last, i.e. textually final, function) but say so
   instead of picking silently. *)
let pick_top module_op top =
  (* Extern declarations have no body, so they are never an implicit
     top choice (naming one explicitly is reported by codegen). *)
  let funcs =
    List.filter (fun f -> not (Ops.is_extern_func f)) (Ops.module_funcs module_op)
  in
  match (top, funcs) with
  | Some name, _ -> (
    match Ops.lookup_func module_op name with
    | Some f -> (f, None)
    | None -> fail_msg (Printf.sprintf "no function @%s in the module" name))
  | None, [] -> fail_msg "module contains no (non-extern) functions"
  | None, [ f ] -> (f, None)
  | None, funcs ->
    let f = List.nth funcs (List.length funcs - 1) in
    let note =
      Printf.sprintf
        "--top not given; choosing the last of %d functions, @%s (candidates: %s)"
        (List.length funcs)
        (Ops.func_name f)
        (String.concat ", " (List.map (fun g -> "@" ^ Ops.func_name g) funcs))
    in
    (f, Some note)

(* The instrument shared by the whole-module pipeline and the staged
   per-function mini-pipelines: pass spans in the Chrome trace, and a
   guard checkpoint between passes so a pipeline that overruns its
   deadline stops at the next pass boundary. *)
let pass_instrument ~trace ~guard = function
  | Pass.Pass_begin _ -> ()
  | Pass.Pass_end { pass_name; seconds; changed; counters; _ } ->
    let stop = Trace.now () in
    (* Pattern/fold application counts ride on the pass span, so the
       Chrome trace shows which rewrites fired and how often. *)
    let counter_args = List.map (fun (k, n) -> (k, string_of_int n)) counters in
    Trace.add_span trace ~cat:"pass"
      ~args:(("changed", string_of_bool changed) :: counter_args)
      ~name:("pass:" ^ pass_name) ~start:(stop -. seconds) ~stop ();
    Guard.tick guard

let run_pipeline ~trace ~guard spec module_op =
  let mgr =
    Pass.Manager.create ~instrument:(pass_instrument ~trace ~guard)
      (Pipeline.to_passes spec)
  in
  let result = Pass.Manager.run mgr module_op in
  if not result.Pass.succeeded then begin
    match Diagnostic.Engine.to_list result.Pass.engine with
    | [] -> fail_msg "pass pipeline failed"
    | diags -> raise (Compile_failed diags)
  end;
  result.Pass.stats

(* Degradations a pass reports about itself (e.g. canonicalize falling
   back to the legacy fixpoint on a backstop trip) surface as counters
   whose name contains "fallback"; lift them into the job's degradation
   list so the batch report shows them without trace spelunking. *)
let fallback_degradations pass_stats =
  let has_sub hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  List.concat_map
    (fun (s : Pass.stat) ->
      List.filter_map
        (fun (name, n) ->
          if has_sub name "fallback" then
            Some (Printf.sprintf "pass %s: %s (x%d)" s.Pass.pass_name name n)
          else None)
        s.Pass.counters)
    pass_stats

let zero_usage = Hir_resources.Model.zero

let compile_job ?cache ?trace ?(limits = Guard.no_limits) ?cancel job =
  let trace = match trace with Some t -> t | None -> Trace.create () in
  let name = source_name job.src in
  let guard = Guard.create ~job:name ?cancel limits in
  let started = Trace.now () in
  let degradations = ref [] in
  let degrade reason =
    degradations := reason :: !degradations;
    Trace.instant trace ~cat:"fault" ~args:[ ("job", name) ] reason;
    Trace.incr trace "degradations"
  in
  try
    Faults.with_scope name (fun () ->
        Ir.with_isolated_ids (fun () ->
            (* Materialize the source text the cache key is computed from;
               builder sources print their module so the key tracks the
               actual IR content. *)
            let text, built =
              match job.src with
              | Text { text; _ } -> (text, None)
              | Builder { build; _ } ->
                Trace.span trace ~cat:"frontend" "build" (fun () ->
                    let m, f = build () in
                    (Printer.op_to_string m, Some (m, f)))
            in
            let pipeline_str = Pipeline.to_string job.pipeline in
            let key = Cache.key ~pipeline:pipeline_str ~top:job.top ~source:text in
            Guard.tick guard;
            (* Staged-cache plumbing: every consult degrades IO trouble
               to a miss (with a note), every store is best-effort.
               With no cache attached both are inert, and the staged
               flow below computes exactly the same bytes — the compute
               path does not depend on the cache being present. *)
            let consult kind what k =
              match cache with
              | None -> None
              | Some c -> (
                match
                  Trace.span trace ~cat:"cache" "cache-lookup" (fun () ->
                      Cache.consult ~kind c k)
                with
                | Cache.Hit entry -> Some entry
                | Cache.Miss -> None
                | Cache.Read_fault reason ->
                  degrade
                    (Printf.sprintf "%s cache read fault, recompiling: %s" what reason);
                  Trace.incr trace "cache-read-fault";
                  None
                | Cache.Corrupt reason ->
                  degrade
                    (Printf.sprintf "corrupt %s cache entry quarantined, recompiling: %s"
                       what reason);
                  Trace.incr trace "cache-quarantined";
                  None)
            in
            let store kind what k entry =
              match cache with
              | None -> ()
              | Some c ->
                Trace.span trace ~cat:"cache" "cache-store" (fun () ->
                    match Cache.store ~kind c k entry with
                    | Ok () -> ()
                    | Error reason ->
                      degrade
                        (Printf.sprintf "cache write fault, %s not cached: %s" what
                           reason);
                      Trace.incr trace "cache-write-fault")
            in
            let finish ~top_name ~verilog ~usage ~from_cache ~note ~pass_stats =
              Ok
                {
                  job_name = name;
                  top_name;
                  verilog;
                  usage;
                  from_cache;
                  note;
                  degradations = List.rev !degradations;
                  pass_stats;
                  seconds = Trace.now () -. started;
                }
            in
            match consult Cache.Job "job" key with
            | Some entry ->
              Trace.incr trace "cache-hit";
              finish ~top_name:entry.Cache.e_top ~verilog:entry.Cache.e_verilog
                ~usage:entry.Cache.e_usage ~from_cache:true ~note:None ~pass_stats:[]
            | None ->
              if cache <> None then Trace.incr trace "cache-miss";
              (* The compile itself as an injection point: models a
                 worker crashing mid-job. *)
              Faults.point "job.compile";
              (* The pre-staged whole-module flow, kept as the fallback
                 for modules the per-function decomposition cannot
                 represent (see [Incr.Fallback]).  Whether a module
                 falls back is a deterministic property of its text, so
                 cold and warm compiles of the same source always take
                 the same path — and the fallback recompiles from
                 scratch under an isolated id counter, so its bytes do
                 not depend on how far the staged attempt got. *)
              let monolithic () =
                let compile () =
                  let module_op, top_func, note =
                    match built with
                    | Some (m, f) -> (m, f, None)
                    | None ->
                      let m =
                        Trace.span trace ~cat:"frontend" "parse" (fun () ->
                            Parser.parse_string ~file:name text)
                      in
                      let f, note = pick_top m job.top in
                      (m, f, note)
                  in
                  Guard.tick guard;
                  Trace.span trace ~cat:"verify" "verify" (fun () ->
                      run_verifiers module_op);
                  Guard.tick guard;
                  let pass_stats = run_pipeline ~trace ~guard job.pipeline module_op in
                  List.iter degrade (fallback_degradations pass_stats);
                  let emitted =
                    Trace.span trace ~cat:"backend" "emit" (fun () ->
                        Hir_codegen.Emit.emit ~module_op ~top:top_func ())
                  in
                  Guard.tick guard;
                  let verilog =
                    Trace.span trace ~cat:"backend" "print" (fun () ->
                        Hir_verilog.Pretty.design_to_string
                          emitted.Hir_codegen.Emit.design)
                  in
                  let usage =
                    Trace.span trace ~cat:"backend" "resource-model" (fun () ->
                        Hir_resources.Model.design_usage emitted.Hir_codegen.Emit.design)
                  in
                  Guard.tick guard;
                  let top_name = Ops.func_name top_func in
                  store Cache.Job "result" key
                    { Cache.e_verilog = verilog; e_top = top_name; e_usage = usage };
                  finish ~top_name ~verilog ~usage ~from_cache:false ~note ~pass_stats
                in
                match built with
                | Some _ ->
                  (* Builder modules are used in place: the id counter
                     state after [build] is the same on every path. *)
                  compile ()
                | None ->
                  (* Text sources re-parse from scratch so the fallback
                     sees ids 0.. wherever the staged attempt aborted. *)
                  Ir.with_isolated_ids compile
              in
              let staged () =
                (* Src stage: parse + verify, memoized on the raw source
                   text.  The payload is the normalized module text (the
                   print∘parse fixed point), so a hit proves this source
                   parsed and verified before and skips both. *)
                let plan, top_name, note =
                  match built with
                  | Some (m, f) ->
                    (* Builder text is print(m): already normalized, and
                       rebuilt fresh on every compile — not worth a Src
                       entry. *)
                    Guard.tick guard;
                    Trace.span trace ~cat:"verify" "verify" (fun () ->
                        run_verifiers m);
                    Guard.tick guard;
                    (Incr.plan_of_module m, Ops.func_name f, None)
                  | None ->
                    let src_key = Cache.stage_key ~kind:Cache.Src ~parts:[ text ] in
                    let plan =
                      match consult Cache.Src "source" src_key with
                      | Some e ->
                        let m =
                          Trace.span trace ~cat:"frontend" "parse" (fun () ->
                              Ir.with_isolated_ids (fun () ->
                                  Parser.parse_string ~file:name e.Cache.e_verilog))
                        in
                        Guard.tick guard;
                        Incr.plan_of_module m
                      | None ->
                        let m =
                          Trace.span trace ~cat:"frontend" "parse" (fun () ->
                              Parser.parse_string ~file:name text)
                        in
                        Guard.tick guard;
                        Trace.span trace ~cat:"verify" "verify" (fun () ->
                            run_verifiers m);
                        Guard.tick guard;
                        let plan =
                          Ir.with_isolated_ids (fun () ->
                              Incr.normalize ~file:name ~text m)
                        in
                        store Cache.Src "normalized source" src_key
                          {
                            Cache.e_verilog = plan.Incr.pl_text;
                            e_top = "";
                            e_usage = zero_usage;
                          };
                        plan
                    in
                    let f, note = pick_top plan.Incr.pl_module job.top in
                    (plan, Ops.func_name f, note)
                in
                if (Incr.fn_info plan top_name).Incr.fi_extern then
                  (* The monolithic emitter reports this as the codegen
                     error it is; reproduce its exact behaviour. *)
                  raise (Incr.Fallback "extern top function");
                let hash = Incr.cone_hashes plan ~pipeline:pipeline_str in
                let link_key =
                  Cache.stage_key ~kind:Cache.Link ~parts:[ hash top_name ]
                in
                match consult Cache.Link "link" link_key with
                | Some entry ->
                  (* Every function of the design is unchanged: re-link
                     from cache, and promote to a whole-job entry so the
                     next compile of this exact source skips even the
                     hashing. *)
                  Trace.incr trace "cache-link-hit";
                  store Cache.Job "result" key entry;
                  finish ~top_name:entry.Cache.e_top ~verilog:entry.Cache.e_verilog
                    ~usage:entry.Cache.e_usage ~from_cache:true ~note ~pass_stats:[]
                | None ->
                  let passes = Pipeline.to_passes job.pipeline in
                  (* Per-function Verilog texts (by function name) and
                     inclusive usages (by *emitted module* name, the key
                     instances carry), filled bottom-up so every
                     instance resolves to an already-computed usage. *)
                  let texts = Hashtbl.create 16 in
                  let usages = Hashtbl.create 16 in
                  (* Shared definitions ([hirdef_*] modules) pulled in by
                     the functions of this design: name -> printed text,
                     plus each function's manifest (which definitions its
                     module needs, in registration order). *)
                  let def_texts = Hashtbl.create 16 in
                  let fn_defs = Hashtbl.create 16 in
                  let def_key dn =
                    Cache.stage_key ~kind:Cache.Vmod ~parts:[ "def"; dn ]
                  in
                  (* Restore every named definition from its own Vmod
                     entry; a missing one (evicted independently of the
                     function entry) turns the function hit into a miss. *)
                  let restore_defs names =
                    List.for_all
                      (fun dn ->
                        Hashtbl.mem def_texts dn
                        ||
                        match consult Cache.Vmod "definition-verilog" (def_key dn) with
                        | Some de ->
                          Hashtbl.replace def_texts dn de.Cache.e_verilog;
                          Hashtbl.replace usages dn de.Cache.e_usage;
                          true
                        | None -> false)
                      names
                  in
                  let all_stats = ref [] in
                  List.iter
                    (fun fn ->
                      Guard.tick guard;
                      let h = hash fn in
                      let vmod_key = Cache.stage_key ~kind:Cache.Vmod ~parts:[ h ] in
                      let hit =
                        match consult Cache.Vmod "function-verilog" vmod_key with
                        | Some e ->
                          let def_names, mtext =
                            Incr.split_manifest e.Cache.e_verilog
                          in
                          restore_defs def_names
                          && begin
                               Hashtbl.replace texts fn mtext;
                               Hashtbl.replace fn_defs fn def_names;
                               Hashtbl.replace usages
                                 (Incr.emitted_module_name fn)
                                 e.Cache.e_usage;
                               true
                             end
                        | None -> false
                      in
                      if not hit then begin
                        let fi = Incr.fn_info plan fn in
                        let opt_text =
                          if fi.Incr.fi_extern then ""
                          else
                            let fn_key =
                              Cache.stage_key ~kind:Cache.Fn ~parts:[ h ]
                            in
                            match consult Cache.Fn "function-ir" fn_key with
                            | Some e -> e.Cache.e_verilog
                            | None ->
                              let opt_text, stats =
                                Incr.optimize_fn plan ~passes
                                  ~instrument:(pass_instrument ~trace ~guard)
                                  fn
                              in
                              all_stats := stats :: !all_stats;
                              store Cache.Fn "optimized function" fn_key
                                {
                                  Cache.e_verilog = opt_text;
                                  e_top = fn;
                                  e_usage = zero_usage;
                                };
                              opt_text
                        in
                        let vmodule, defs =
                          Trace.span trace ~cat:"backend" "emit" (fun () ->
                              Incr.emit_fn plan ~opt_text fn)
                        in
                        let instance_usage mname =
                          match Hashtbl.find_opt usages mname with
                          | Some u -> u
                          | None ->
                            raise
                              (Incr.Fallback ("instance of unknown module " ^ mname))
                        in
                        (* Register the definitions first: the function
                           module instantiates them, so its own usage
                           lookup below must already resolve their names. *)
                        let def_names =
                          List.map (fun d -> d.Hir_verilog.Ast.mod_name) defs
                        in
                        List.iter
                          (fun (d : Hir_verilog.Ast.module_def) ->
                            let dn = d.Hir_verilog.Ast.mod_name in
                            if not (Hashtbl.mem def_texts dn) then begin
                              let dtext = Hir_verilog.Pretty.module_to_string d in
                              let dusage =
                                Hir_resources.Model.module_usage ~instance_usage d
                              in
                              Hashtbl.replace def_texts dn dtext;
                              Hashtbl.replace usages dn dusage;
                              store Cache.Vmod "definition Verilog" (def_key dn)
                                {
                                  Cache.e_verilog = dtext;
                                  e_top = dn;
                                  e_usage = dusage;
                                }
                            end)
                          defs;
                        let mtext = Hir_verilog.Pretty.module_to_string vmodule in
                        let usage =
                          Hir_resources.Model.module_usage ~instance_usage vmodule
                        in
                        Hashtbl.replace texts fn mtext;
                        Hashtbl.replace fn_defs fn def_names;
                        Hashtbl.replace usages (Incr.emitted_module_name fn) usage;
                        store Cache.Vmod "function Verilog" vmod_key
                          {
                            Cache.e_verilog = Incr.with_manifest ~def_names mtext;
                            e_top = fn;
                            e_usage = usage;
                          }
                      end)
                    (Incr.usage_order plan ~top:top_name);
                  let verilog =
                    Trace.span trace ~cat:"backend" "print" (fun () ->
                        (* Interleave each function's not-yet-placed
                           definitions before its module, exactly as
                           [Emit.emit] orders a monolithic design. *)
                        let placed = Hashtbl.create 16 in
                        Incr.link_design
                          (List.concat_map
                             (fun fn ->
                               let defs =
                                 List.filter_map
                                   (fun dn ->
                                     if Hashtbl.mem placed dn then None
                                     else begin
                                       Hashtbl.replace placed dn ();
                                       Some (Hashtbl.find def_texts dn)
                                     end)
                                   (Option.value ~default:[]
                                      (Hashtbl.find_opt fn_defs fn))
                               in
                               defs @ [ Hashtbl.find texts fn ])
                             (Incr.emit_order plan ~top:top_name)))
                  in
                  Guard.tick guard;
                  let usage =
                    Hashtbl.find usages (Incr.emitted_module_name top_name)
                  in
                  let entry =
                    { Cache.e_verilog = verilog; e_top = top_name; e_usage = usage }
                  in
                  store Cache.Link "linked design" link_key entry;
                  store Cache.Job "result" key entry;
                  let pass_stats = List.concat (List.rev !all_stats) in
                  List.iter degrade (fallback_degradations pass_stats);
                  finish ~top_name ~verilog ~usage ~from_cache:false ~note ~pass_stats
              in
              (try staged () with
              | Incr.Fallback reason ->
                Trace.instant trace ~cat:"fault"
                  ~args:[ ("job", name); ("reason", reason) ]
                  "staged-fallback";
                Trace.incr trace "staged-fallback";
                monolithic ()
              | Incr.Pass_failed diags -> raise (Compile_failed diags))))
  with
  | Compile_failed diags ->
    (* Diagnostics with no location of their own are attributed to the
       job, so batch output still says which input failed. *)
    let diags =
      List.map
        (fun (d : Diagnostic.t) ->
          if Location.is_unknown d.Diagnostic.loc then
            { d with Diagnostic.loc = Location.name name }
          else d)
        diags
    in
    Error { err_job = name; err_class = Permanent; err_diags = diags }
  | Guard.Exhausted { reason; _ } ->
    Trace.instant trace ~cat:"fault" ~args:[ ("job", name) ] "job-timeout";
    Error
      { err_job = name;
        err_class = Timeout;
        err_diags = [ Diagnostic.error (Location.name name) ("job timeout: " ^ reason) ] }
  | Guard.Cancelled _ ->
    Trace.instant trace ~cat:"fault" ~args:[ ("job", name) ] "job-cancelled";
    Error
      { err_job = name;
        err_class = Cancelled;
        err_diags = [ Diagnostic.error (Location.name name) "job cancelled" ] }
  | Faults.Injected p ->
    Trace.instant trace ~cat:"fault" ~args:[ ("job", name); ("point", p) ] "fault-injected";
    Error
      { err_job = name;
        err_class = Transient;
        err_diags =
          [ Diagnostic.error (Location.name name) ("injected fault at " ^ p) ] }
  | Parser.Parse_error (loc, msg) ->
    Error
      { err_job = name;
        err_class = Permanent;
        err_diags = [ Diagnostic.error loc ("parse error: " ^ msg) ] }
  | Lexer.Lex_error (loc, msg) ->
    Error
      { err_job = name;
        err_class = Permanent;
        err_diags = [ Diagnostic.error loc ("lex error: " ^ msg) ] }
  | Hir_codegen.Emit.Codegen_error msg ->
    Error
      { err_job = name;
        err_class = Permanent;
        err_diags = [ Diagnostic.error (Location.name name) ("codegen: " ^ msg) ] }
  | Sys_error msg ->
    (* IO trouble is infrastructure, not input: worth a retry. *)
    Error
      { err_job = name;
        err_class = Transient;
        err_diags = [ Diagnostic.error (Location.name name) msg ] }
  | (Stack_overflow | Out_of_memory) as e -> raise e
  | exn ->
    (* Backstop: a bug anywhere in the stack (an uncaught [Failure], an
       [Invalid_argument], …) must not escape across the scheduler's
       domains; surface it as an internal-error diagnostic instead.
       `hirc fuzz` bypasses this by driving the stages directly, so the
       fuzzer still sees such bugs as crashes. *)
    Error
      { err_job = name;
        err_class = Permanent;
        err_diags =
          [ Diagnostic.error (Location.name name)
              ("internal error: " ^ Printexc.to_string exn) ] }

(* ------------------------------------------------------------------ *)
(* Batch mode                                                          *)

(* Retry policy for transient failures: capped exponential backoff with
   seeded jitter (deterministic — see [Faults.uniform]), then
   quarantine: a job still failing transiently after [max_attempts] is
   reported as failed and not retried again within the batch. *)
type retry_policy = {
  max_attempts : int;  (* total attempts, including the first *)
  base_backoff_s : float;
  max_backoff_s : float;
  retry_seed : int;  (* jitter seed *)
}

let default_retry =
  { max_attempts = 3; base_backoff_s = 0.002; max_backoff_s = 0.05; retry_seed = 0 }

(* One per job, always: the scheduler invariant the fault-injection
   tests pin down is that a batch of n jobs yields exactly n reports,
   whatever faults fired. *)
type report = {
  rp_job : string;
  rp_attempts : int;
  rp_outcome : outcome;
}

let report_status r =
  match r.rp_outcome with
  | Error e -> if e.err_class = Cancelled then `Cancelled else `Failed
  | Ok o -> if o.degradations = [] then `Ok else `Degraded

let status_to_string = function
  | `Ok -> "ok"
  | `Degraded -> "degraded"
  | `Failed -> "failed"
  | `Cancelled -> "cancelled"

(* A report for a job that was cancelled before any attempt ran (the
   service core dequeues it without spending a worker on it). *)
let cancelled_report ~job =
  {
    rp_job = job;
    rp_attempts = 0;
    rp_outcome =
      Error
        {
          err_job = job;
          err_class = Cancelled;
          err_diags = [ Diagnostic.error (Location.name job) "job cancelled" ];
        };
  }

(* A report for a job whose runner itself crashed (a bug escaping even
   [compile_job]'s backstop, or OOM in a worker): the service must
   still deliver exactly one report. *)
let crashed_report ~job exn =
  {
    rp_job = job;
    rp_attempts = 1;
    rp_outcome =
      Error
        {
          err_job = job;
          err_class = Permanent;
          err_diags =
            [ Diagnostic.error (Location.name job)
                ("internal error: job runner crashed: " ^ Printexc.to_string exn) ];
        };
  }

type batch_result = {
  reports : report array;  (* in job order *)
  outcomes : outcome array;  (* = reports' outcomes, in job order *)
  batch_notes : string list;  (* batch-level degradations (spawn faults) *)
  traces : Trace.t list;  (* one per job, tid = job index + 1 *)
  wall_seconds : float;
}

let run_with_retry ?cache ?cancel ~trace ~limits ~retry job =
  let name = source_name job.src in
  let rec go attempt retry_notes =
    match compile_job ?cache ~trace ~limits ?cancel job with
    | Ok o ->
      let o =
        if retry_notes = [] then o
        else { o with degradations = o.degradations @ List.rev retry_notes }
      in
      { rp_job = name; rp_attempts = attempt; rp_outcome = Ok o }
    | Error e when e.err_class = Transient && attempt < retry.max_attempts ->
      let cause =
        match e.err_diags with
        | d :: _ -> d.Diagnostic.msg
        | [] -> "transient failure"
      in
      Trace.incr trace "retries";
      Trace.instant trace ~cat:"fault"
        ~args:[ ("job", name); ("attempt", string_of_int attempt) ]
        "retry";
      (* Capped exponential backoff with seeded jitter in [0.5x, 1.5x]. *)
      let backoff =
        Float.min retry.max_backoff_s
          (retry.base_backoff_s *. (2. ** float_of_int (attempt - 1)))
      in
      let jitter =
        0.5 +. Faults.uniform ~seed:retry.retry_seed ~key:name ~index:attempt
      in
      let delay = backoff *. jitter in
      if delay > 0. then Unix.sleepf delay;
      go (attempt + 1)
        (Printf.sprintf "attempt %d failed (%s); retried" attempt cause
        :: retry_notes)
    | Error e ->
      let e =
        if e.err_class = Transient then
          (* Retries exhausted: quarantine the repeat offender. *)
          { e with
            err_diags =
              e.err_diags
              @ [ Diagnostic.error (Location.name name)
                    (Printf.sprintf
                       "job quarantined after %d transient failures; giving up"
                       attempt) ] }
        else e
      in
      { rp_job = name; rp_attempts = attempt; rp_outcome = Error e }
  in
  go 1 []

(* Batch mode is one-shot use of the service core: submit every job as
   a single client at equal priority (so scheduling is plain FIFO),
   shut the pool down to drain it, and collect the per-index reports.
   Results stay byte-identical to a sequential run — each job compiles
   under [Ir.with_isolated_ids], so output does not depend on which
   worker ran it or when. *)
let batch ?cache ?(workers = 1) ?(limits = Guard.no_limits) ?(retry = default_retry)
    (jobs : job array) =
  let n = Array.length jobs in
  let epoch = Trace.now () in
  let traces =
    Array.init n (fun i ->
        let t = Trace.create ~epoch () in
        Trace.set_tid t (i + 1);
        t)
  in
  let reports = Array.make n None in
  let spawned = min (max 0 workers) n in
  let svc =
    Service.create ~workers:spawned
      ~run:(fun h ->
        let i = Service.data h in
        run_with_retry ?cache
          ~cancel:(Service.cancel_flag h)
          ~trace:traces.(i) ~limits ~retry jobs.(i))
      ~cancelled:(fun h -> cancelled_report ~job:(source_name jobs.(Service.data h).src))
      ~crashed:(fun h exn ->
        crashed_report ~job:(source_name jobs.(Service.data h).src) exn)
      ~on_complete:(fun c ->
        reports.(Service.data c.Service.c_handle) <- Some c.Service.c_result)
      ()
  in
  Array.iteri
    (fun i _ ->
      match Service.submit svc ~client:0 ~priority:0 i with
      | Service.Accepted _ -> ()
      | Service.Overloaded | Service.Stopped ->
        (* Unbounded depth, not yet stopped: cannot happen. *)
        assert false)
    jobs;
  (* Drain: with zero live workers (all spawns failed, or -j0) shutdown
     runs the queue inline in this domain, preserving the degradation
     ladder the spawn-fault tests pin down. *)
  Service.shutdown svc;
  let reports =
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* shutdown delivers every completion *))
      reports
  in
  let batch_notes =
    match Service.spawn_failure_count svc with
    | 0 -> []
    | f ->
      [ Printf.sprintf
          "%d of %d worker spawns failed; batch degraded to the surviving workers" f
          spawned ]
  in
  {
    reports;
    outcomes = Array.map (fun r -> r.rp_outcome) reports;
    batch_notes;
    traces = Array.to_list traces;
    wall_seconds = Trace.now () -. epoch;
  }

(* Prime a cache by compiling a job list through the normal batch
   machinery (same fault handling, same retries), purely for the side
   effect of filling [cache].  Returns (stored, hits, failures): jobs
   newly compiled into the cache, jobs already present, jobs that
   failed to compile. *)
let warm_cache ~cache ?(workers = 1) ?(limits = Guard.no_limits)
    ?(retry = default_retry) (jobs : job array) =
  let result = batch ~cache ~workers ~limits ~retry jobs in
  Array.fold_left
    (fun (stored, hits, failures) r ->
      match r.rp_outcome with
      | Ok o when o.from_cache -> (stored, hits + 1, failures)
      | Ok _ -> (stored + 1, hits, failures)
      | Error _ -> (stored, hits, failures + 1))
    (0, 0, 0) result.reports

(* Per-stage wall-time totals across a set of traces, for compile-time
   breakdown tables (the shape of the paper's Table 6). *)
let stage_totals traces =
  let stages = Hashtbl.create 16 in
  List.iter
    (fun t ->
      List.iter
        (fun (s : Trace.span) ->
          let prev = Option.value ~default:0. (Hashtbl.find_opt stages s.Trace.sp_name) in
          Hashtbl.replace stages s.Trace.sp_name (prev +. (s.Trace.sp_dur_us /. 1e6)))
        (Trace.spans t))
    traces;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) stages [] |> List.sort compare
