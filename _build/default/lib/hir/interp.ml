(* Cycle-accurate interpreter for verified HIR designs.

   Execution follows the textual (SSA) order but tracks the absolute
   clock cycle of every event, so latencies, initiation intervals and
   lock-step task parallelism are all observable.  Memory cells keep
   their full write history ((commit_cycle, value) pairs); a read at
   cycle T returns the latest value committed at or before T, and a
   write issued at cycle T commits at T+1 — exactly the RAM semantics
   the code generator lowers to.

   The interpreter requires IR that passed both the structural and the
   schedule verifier; on such IR the textual order is consistent with
   the data flow, including cross-task lock-step pipelines where the
   producing task appears before the consuming task. *)

open Hir_ir

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Values                                                              *)

type data =
  | Bits of Bitvec.t
  | Const_int of int  (* a !hir.const: width-polymorphic *)

let data_to_int = function
  | Bits b -> Bitvec.to_signed_int b
  | Const_int n -> n

let data_to_unsigned = function
  | Bits b -> Bitvec.to_int b
  | Const_int n ->
    if n < 0 then fail "negative constant used as unsigned" else n

let data_to_bits ~width = function
  | Bits b ->
    if Bitvec.width b = width then b
    else fail "width mismatch: value has %d bits, expected %d" (Bitvec.width b) width
  | Const_int n -> Bitvec.of_int ~width n

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)

type cell = { mutable history : (int * Bitvec.t) list (* newest first *) }

type tensor = {
  cells : cell array;  (* linearized over all dims, row-major *)
  info : Types.memref_info;
  elem_width : int;
}

let tensor_create info =
  let elem_width =
    match Typ.bit_width info.Types.elem with
    | Some w -> w
    | None -> fail "memref element type has no bit width"
  in
  {
    cells = Array.init (Types.num_elements info) (fun _ -> { history = [] });
    info;
    elem_width;
  }

let linear_index info indices =
  let rec go dims indices acc =
    match (dims, indices) with
    | [], [] -> acc
    | d :: dims, i :: indices ->
      if i < 0 || i >= d.Types.size then
        fail "memory access out of bounds: index %d exceeds dimension of size %d" i
          d.Types.size
      else go dims indices ((acc * d.Types.size) + i)
    | _ -> fail "memory access rank mismatch"
  in
  go info.Types.dims indices 0

let tensor_read tensor indices ~cycle =
  let cell = tensor.cells.(linear_index tensor.info indices) in
  let rec find = function
    | [] ->
      fail "read of uninitialized memory at cycle %d (undefined behaviour per §4.5)"
        cycle
    | (commit, v) :: rest -> if commit <= cycle then v else find rest
  in
  find cell.history

let tensor_write tensor indices value ~cycle =
  let cell = tensor.cells.(linear_index tensor.info indices) in
  (* Commit one cycle after issue. *)
  cell.history <- (cycle + 1, value) :: cell.history

let tensor_init tensor values =
  Array.iteri
    (fun i v -> tensor.cells.(i).history <- [ (min_int, v) ])
    values

let tensor_snapshot tensor ~cycle =
  Array.map
    (fun cell ->
      let rec find = function
        | [] -> None
        | (commit, v) :: rest -> if commit <= cycle then Some v else find rest
      in
      find cell.history)
    tensor.cells

(* ------------------------------------------------------------------ *)
(* Environment                                                         *)

type env = {
  values : (int, data) Hashtbl.t;  (* SSA value id -> data *)
  times : (int, int) Hashtbl.t;  (* time value id -> absolute cycle *)
  memrefs : (int, tensor) Hashtbl.t;  (* memref value id -> storage *)
  module_op : Ir.op;
  mutable max_cycle : int;
  mutable read_count : int;
  mutable write_count : int;
}

let observe env cycle = if cycle > env.max_cycle then env.max_cycle <- cycle

let bind_data env v d = Hashtbl.replace env.values (Ir.Value.id v) d
let bind_time env v t = Hashtbl.replace env.times (Ir.Value.id v) t
let bind_memref env v tensor = Hashtbl.replace env.memrefs (Ir.Value.id v) tensor

let eval_data env v =
  match Hashtbl.find_opt env.values (Ir.Value.id v) with
  | Some d -> d
  | None -> fail "value %%%s has no runtime binding"
              (Option.value ~default:"?" (Ir.Value.hint v))

let eval_time env v =
  match Hashtbl.find_opt env.times (Ir.Value.id v) with
  | Some t -> t
  | None -> fail "time variable has no runtime binding"

let eval_memref env v =
  match Hashtbl.find_opt env.memrefs (Ir.Value.id v) with
  | Some t -> t
  | None -> fail "memref has no runtime storage"

let value_bits env v =
  match Ir.Value.typ v with
  | Typ.Int w -> data_to_bits ~width:w (eval_data env v)
  | Types.Const -> (
    match eval_data env v with
    | Const_int n -> Bitvec.of_int ~width:64 n
    | Bits b -> b)
  | t -> fail "expected an integer value, got %s" (Typ.to_string t)

(* ------------------------------------------------------------------ *)
(* Compute op semantics                                                *)

let apply_binary name a b =
  let module B = Bitvec in
  match name with
  | "hir.add" -> B.add a b
  | "hir.sub" -> B.sub a b
  | "hir.mult" -> B.mul a b
  | "hir.and" -> B.logand a b
  | "hir.or" -> B.logor a b
  | "hir.xor" -> B.logxor a b
  | "hir.shl" -> B.shift_left a (B.to_int b)
  | "hir.shrl" -> B.shift_right_logical a (B.to_int b)
  | "hir.shra" -> B.shift_right_arith a (B.to_int b)
  | _ -> fail "unknown binary op %s" name

(* HIR comparisons are unsigned, like default Verilog reg/wire
   comparisons — this is what lets the precision optimizer narrow
   non-negative values without changing comparison results. *)
let apply_comparison name a b =
  let c = Bitvec.compare a b in
  let r =
    match name with
    | "hir.lt" -> c < 0
    | "hir.le" -> c <= 0
    | "hir.gt" -> c > 0
    | "hir.ge" -> c >= 0
    | "hir.eq" -> c = 0
    | "hir.ne" -> c <> 0
    | _ -> fail "unknown comparison %s" name
  in
  Bitvec.of_bool r

(* Operand value zero-extended (or const-materialized) at [width] —
   the Verilog-like mixed-width semantics of HIR compute ops. *)
let operand_bits_at env ~width v =
  match Ir.Value.typ v with
  | Typ.Int w -> Bitvec.resize ~width (data_to_bits ~width:w (eval_data env v))
  | _ -> (
    match eval_data env v with
    | Const_int n -> Bitvec.of_int ~width n
    | Bits b -> Bitvec.resize ~width b)

(* Evaluate a binary op whose operands may mix iN and !hir.const, at
   the given common width. *)
let binary_operand_bits env ?result_width x y =
  let width =
    match result_width with
    | Some w -> Some w
    | None -> (
      (* Comparisons: widest operand wins. *)
      match (Ir.Value.typ x, Ir.Value.typ y) with
      | Typ.Int a, Typ.Int b -> Some (max a b)
      | Typ.Int a, _ | _, Typ.Int a -> Some a
      | _ -> None)
  in
  match width with
  | Some w -> Some (operand_bits_at env ~width:w x, operand_bits_at env ~width:w y)
  | None -> None  (* both const: do exact integer arithmetic *)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

type result = {
  return_values : Bitvec.t list;
  cycles : int;  (* last cycle at which anything happened *)
  reads : int;
  writes : int;
}

let rec exec_block env block =
  List.iter (exec_op env) (Ir.Block.ops block)

and exec_op env op =
  match Ir.Op.name op with
  | "hir.constant" -> bind_data env (Ir.Op.result op 0) (Const_int (Ops.constant_value op))
  | "hir.alloc" ->
    let first = Ir.Op.result op 0 in
    let tensor = tensor_create (Types.memref_info (Ir.Value.typ first)) in
    List.iter (fun r -> bind_memref env r tensor) (Ir.Op.results op)
  | "hir.delay" ->
    (* Identity on data; the schedule verifier has already checked the
       timing. *)
    bind_data env (Ir.Op.result op 0) (eval_data env (Ops.delay_input op))
  | "hir.mem_read" ->
    let cycle = eval_time env (Ops.mem_read_time op) + Ops.mem_read_offset op in
    observe env (cycle + Ops.mem_read_latency op);
    let tensor = eval_memref env (Ops.mem_read_mem op) in
    let indices = List.map (fun i -> data_to_unsigned (eval_data env i)) (Ops.mem_read_indices op) in
    env.read_count <- env.read_count + 1;
    bind_data env (Ir.Op.result op 0) (Bits (tensor_read tensor indices ~cycle))
  | "hir.mem_write" ->
    let cycle = eval_time env (Ops.mem_write_time op) + Ops.mem_write_offset op in
    observe env (cycle + 1);
    let tensor = eval_memref env (Ops.mem_write_mem op) in
    let indices =
      List.map (fun i -> data_to_unsigned (eval_data env i)) (Ops.mem_write_indices op)
    in
    let value = data_to_bits ~width:tensor.elem_width (eval_data env (Ops.mem_write_value op)) in
    env.write_count <- env.write_count + 1;
    tensor_write tensor indices value ~cycle
  | "hir.for" -> exec_for env op
  | "hir.unroll_for" -> exec_unroll_for env op
  | "hir.call" -> exec_call env op
  | "hir.yield" | "hir.return" -> ()  (* handled by the enclosing construct *)
  | "hir.select" ->
    let cond = value_bits env (Ir.Op.operand op 0) in
    let chosen = if Bitvec.is_zero cond then Ir.Op.operand op 2 else Ir.Op.operand op 1 in
    bind_data env (Ir.Op.result op 0) (eval_data env chosen)
  | "hir.not" ->
    let x = Ir.Op.operand op 0 in
    (match Ir.Value.typ x with
    | Typ.Int w ->
      bind_data env (Ir.Op.result op 0)
        (Bits (Bitvec.lognot (data_to_bits ~width:w (eval_data env x))))
    | _ ->
      bind_data env (Ir.Op.result op 0) (Const_int (lnot (data_to_int (eval_data env x)))))
  | ("hir.zext" | "hir.sext" | "hir.trunc") as name ->
    let x = Ir.Op.operand op 0 in
    let width =
      match Ir.Value.typ (Ir.Op.result op 0) with
      | Typ.Int w -> w
      | _ -> fail "resize result must be integer"
    in
    let bits =
      match Ir.Value.typ x with
      | Typ.Int w -> data_to_bits ~width:w (eval_data env x)
      | _ -> Bitvec.of_int ~width (data_to_int (eval_data env x))
    in
    let r =
      match name with
      | "hir.zext" -> Bitvec.resize ~width bits
      | "hir.sext" -> Bitvec.resize_signed ~width bits
      | _ -> Bitvec.resize ~width bits
    in
    bind_data env (Ir.Op.result op 0) (Bits r)
  | name when List.mem name Ops.binary_compute_ops ->
    let x = Ir.Op.operand op 0 and y = Ir.Op.operand op 1 in
    let result_width =
      match Ir.Value.typ (Ir.Op.result op 0) with Typ.Int w -> Some w | _ -> None
    in
    (match binary_operand_bits env ?result_width x y with
    | Some (a, b) -> bind_data env (Ir.Op.result op 0) (Bits (apply_binary name a b))
    | None ->
      let a = data_to_int (eval_data env x) and b = data_to_int (eval_data env y) in
      let r =
        match name with
        | "hir.add" -> a + b
        | "hir.sub" -> a - b
        | "hir.mult" -> a * b
        | "hir.and" -> a land b
        | "hir.or" -> a lor b
        | "hir.xor" -> a lxor b
        | "hir.shl" -> a lsl b
        | "hir.shrl" -> a lsr b
        | "hir.shra" -> a asr b
        | _ -> fail "unknown const op %s" name
      in
      bind_data env (Ir.Op.result op 0) (Const_int r))
  | name when List.mem name Ops.comparison_ops ->
    let x = Ir.Op.operand op 0 and y = Ir.Op.operand op 1 in
    (match binary_operand_bits env x y with
    | Some (a, b) -> bind_data env (Ir.Op.result op 0) (Bits (apply_comparison name a b))
    | None ->
      let a = data_to_int (eval_data env x) and b = data_to_int (eval_data env y) in
      let r =
        match name with
        | "hir.lt" -> a < b
        | "hir.le" -> a <= b
        | "hir.gt" -> a > b
        | "hir.ge" -> a >= b
        | "hir.eq" -> a = b
        | "hir.ne" -> a <> b
        | _ -> fail "unknown const comparison %s" name
      in
      bind_data env (Ir.Op.result op 0) (Bits (Bitvec.of_bool r)))
  | name -> fail "interpreter: unsupported op %s" name

and exec_for env op =
  let lb = data_to_int (eval_data env (Ops.for_lb op)) in
  let ub = data_to_int (eval_data env (Ops.for_ub op)) in
  let step = data_to_int (eval_data env (Ops.for_step op)) in
  if step <= 0 then fail "hir.for requires a positive step";
  if lb > ub then fail "hir.for lower bound exceeds upper bound (UB per §4.5)";
  let start = eval_time env (Ops.for_time op) + Ops.for_offset op in
  let body = Ops.loop_body op in
  let iv = Ops.loop_induction_var op in
  let ti = Ops.loop_iter_time op in
  let iv_width = match Ir.Value.typ iv with Typ.Int w -> w | _ -> 32 in
  let yield_op = Ops.loop_yield op in
  let rec iterate i t =
    if i >= ub then t
    else begin
      bind_data env iv (Bits (Bitvec.of_int ~width:iv_width i));
      bind_time env ti t;
      observe env t;
      exec_block env body;
      let next_t = eval_time env (Ops.yield_time yield_op) + Ops.yield_offset yield_op in
      iterate (i + step) next_t
    end
  in
  let tf = iterate lb start in
  bind_time env (Ir.Op.result op 0) tf;
  observe env tf

and exec_unroll_for env op =
  let lb = Ops.unroll_for_lb op in
  let ub = Ops.unroll_for_ub op in
  let step = Ops.unroll_for_step op in
  let start = eval_time env (Ops.unroll_for_time op) + Ops.unroll_for_offset op in
  let body = Ops.loop_body op in
  let iv = Ir.Block.arg body 0 in
  let ti = Ir.Block.arg body 1 in
  let yield_op = Ops.loop_yield op in
  let rec iterate i t =
    if i >= ub then t
    else begin
      bind_data env iv (Const_int i);
      bind_time env ti t;
      observe env t;
      exec_block env body;
      let next_t = eval_time env (Ops.yield_time yield_op) + Ops.yield_offset yield_op in
      iterate (i + step) next_t
    end
  in
  let tf = iterate lb start in
  bind_time env (Ir.Op.result op 0) tf;
  observe env tf

and exec_call env op =
  let cycle = eval_time env (Ops.call_time op) + Ops.call_offset op in
  observe env cycle;
  let callee_name = Ops.call_callee op in
  match Ops.lookup_func env.module_op callee_name with
  | None -> fail "call to unknown function @%s" callee_name
  | Some callee when Ops.is_extern_func callee ->
    let impl = Extern.lookup_exn callee_name in
    let args =
      List.map2
        (fun v w -> data_to_bits ~width:w (eval_data env v))
        (Ops.call_args op) impl.Extern.arg_widths
    in
    let r = impl.Extern.eval args in
    observe env (cycle + impl.Extern.latency);
    (match Ir.Op.results op with
    | [ res ] -> bind_data env res (Bits r)
    | _ -> fail "extern calls must produce exactly one result")
  | Some callee ->
    (* Execute the callee body in the same global environment: SSA ids
       are globally unique, and memref args alias the caller's
       storage.  Note: each call re-binds the callee's values, so
       overlapped invocations of the SAME callee rely on the lock-step
       textual-order discipline described in the header comment. *)
    let body = Ops.func_body callee in
    let data_args = Ops.func_data_args callee in
    List.iter2
      (fun formal actual ->
        match Ir.Value.typ formal with
        | Types.Memref _ -> bind_memref env formal (eval_memref env actual)
        | _ -> bind_data env formal (eval_data env actual))
      data_args (Ops.call_args op);
    bind_time env (Ops.func_time_arg callee) cycle;
    exec_block env body;
    (* Bind call results from the callee's return. *)
    let return_op =
      match List.find_opt (fun o -> Ir.Op.name o = "hir.return") (Ir.Block.ops body) with
      | Some r -> r
      | None -> fail "callee @%s has no return" callee_name
    in
    List.iteri
      (fun i res -> bind_data env res (eval_data env (Ir.Op.operand return_op i)))
      (Ir.Op.results op);
    let result_delays = Ops.call_result_delays op in
    List.iter (fun d -> observe env (cycle + d)) result_delays

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

type input =
  | Scalar of Bitvec.t
  | Tensor of Bitvec.t array  (* initial contents, row-major *)
  | Out_tensor  (* uninitialized output buffer *)
  | Shared of int  (* alias the tensor passed at the given arg index *)

let run ?(start_cycle = 0) ~module_op ~func inputs =
  let env =
    {
      values = Hashtbl.create 256;
      times = Hashtbl.create 64;
      memrefs = Hashtbl.create 16;
      module_op;
      max_cycle = start_cycle;
      read_count = 0;
      write_count = 0;
    }
  in
  let data_args = Ops.func_data_args func in
  if List.length data_args <> List.length inputs then
    fail "expected %d inputs, got %d" (List.length data_args) (List.length inputs);
  let arg_array = Array.of_list data_args in
  List.iteri
    (fun i input ->
      let formal = arg_array.(i) in
      match (input, Ir.Value.typ formal) with
      | Scalar b, _ -> bind_data env formal (Bits b)
      | Tensor init, Types.Memref info ->
        let tensor = tensor_create info in
        tensor_init tensor init;
        bind_memref env formal tensor
      | Out_tensor, Types.Memref info -> bind_memref env formal (tensor_create info)
      | Shared j, Types.Memref _ ->
        bind_memref env formal (eval_memref env arg_array.(j))
      | _ -> fail "input %d does not match the argument type" i)
    inputs;
  bind_time env (Ops.func_time_arg func) start_cycle;
  exec_block env (Ops.func_body func);
  let return_op =
    List.find (fun o -> Ir.Op.name o = "hir.return") (Ir.Block.ops (Ops.func_body func))
  in
  let return_values =
    List.map (fun v -> value_bits env v) (Ir.Op.operands return_op)
  in
  let arg_tensor i =
    let formal = arg_array.(i) in
    eval_memref env formal
  in
  ( {
      return_values;
      cycles = env.max_cycle - start_cycle;
      reads = env.read_count;
      writes = env.write_count;
    },
    arg_tensor )

(* Convenience: read back an output tensor after a run. *)
let output_tensor (_, arg_tensor) ~arg ~cycle =
  tensor_snapshot (arg_tensor arg) ~cycle
