(* The schedule verification pass (paper Section 6.1).

   Detects, at compile time:
   - mismatched delays: an operand consumed at a cycle other than the
     one at which it is valid (Figure 1: a pipelined loop's induction
     variable used one cycle late; Figure 2: adder inputs arriving from
     differently-pipelined producers);
   - uses across unrelated time domains;
   - loops whose yield would restart an iteration in the past (II < 1
     for hir.for);
   - memref port conflicts: two accesses statically scheduled on the
     same port in the same cycle (undefined behaviour per Section 4.5)
     unless they target provably distinct banks. *)

open Hir_ir

let verify_loop_iis engine analysis func =
  Ir.Walk.ops_pre func ~f:(fun op ->
      match Ir.Op.name op with
      | "hir.for" -> (
        match Time_analysis.loop_ii analysis op with
        | Some ii when ii < 1 ->
          Diagnostic.Engine.errorf engine (Ir.Op.loc op)
            "Schedule error: loop initiation interval must be at least 1, got %d" ii
        | _ -> ())
      | "hir.unroll_for" -> (
        match Time_analysis.loop_ii analysis op with
        | Some ii when ii < 0 ->
          Diagnostic.Engine.errorf engine (Ir.Op.loc op)
            "Schedule error: unroll_for initiation interval must be non-negative, got %d"
            ii
        | _ -> ())
      | _ -> ())

(* Two accesses on the same memref port at the same (root, delta) are a
   conflict unless their distributed-dimension indices are constants
   that select different banks. *)
let verify_port_conflicts engine analysis func =
  let accesses : (int, (Ir.op * (Ir.value * int)) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  Ir.Walk.ops_pre func ~f:(fun op ->
      let record mem =
        match Time_analysis.op_start analysis op with
        | None -> ()
        | Some start ->
          let key = Ir.Value.id mem in
          let cell =
            match Hashtbl.find_opt accesses key with
            | Some c -> c
            | None ->
              let c = ref [] in
              Hashtbl.add accesses key c;
              c
          in
          cell := (op, start) :: !cell
      in
      match Ir.Op.name op with
      | "hir.mem_read" -> record (Ops.mem_read_mem op)
      | "hir.mem_write" -> record (Ops.mem_write_mem op)
      | _ -> ());
  let static_bank op =
    (* Bank selected by the access, if all distributed indices are
       compile-time constants. *)
    let mem, indices =
      if Ir.Op.name op = "hir.mem_read" then (Ops.mem_read_mem op, Ops.mem_read_indices op)
      else (Ops.mem_write_mem op, Ops.mem_write_indices op)
    in
    let info = Types.memref_info (Ir.Value.typ mem) in
    let dist_consts =
      List.map2
        (fun d idx -> if d.Types.packed then Some 0 else Ops.as_constant idx)
        info.dims indices
    in
    if List.for_all Option.is_some dist_consts then
      Some (Types.bank_of_indices info (List.map (Option.value ~default:0) dist_consts))
    else None
  in
  Hashtbl.iter
    (fun _ cell ->
      let items = !cell in
      let rec pairs = function
        | [] -> ()
        | (op_a, (root_a, d_a)) :: rest ->
          List.iter
            (fun (op_b, (root_b, d_b)) ->
              if Ir.Value.equal root_a root_b && d_a = d_b then begin
                let distinct_banks =
                  match (static_bank op_a, static_bank op_b) with
                  | Some x, Some y -> x <> y
                  | _ -> false
                in
                if not distinct_banks then
                  Diagnostic.Engine.error engine (Ir.Op.loc op_a)
                    ~notes:
                      [ Diagnostic.note ~loc:(Ir.Op.loc op_b) "Conflicting access here." ]
                    "Schedule error: multiple accesses to the same memref port in the \
                     same cycle"
              end)
            rest;
          pairs rest
      in
      pairs items)
    accesses

let verify_func engine func =
  if not (Ops.is_extern_func func) then begin
    let analysis = Time_analysis.analyze ~engine func in
    verify_loop_iis engine analysis func;
    verify_port_conflicts engine analysis func
  end

let verify_module engine module_op =
  List.iter (verify_func engine) (Ops.module_funcs module_op)

let run module_op engine =
  verify_module engine module_op;
  false

let pass =
  Pass.make ~name:"verify-schedule"
    ~description:"Statically check the explicit schedule (Section 6.1)" run
