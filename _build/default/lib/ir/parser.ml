(* Parser for the generic textual form emitted by [Printer].  The
   grammar is the MLIR generic-op grammar restricted to what this IR
   supports (single-block regions with argument lists, no successor
   lists). *)

exception Parse_error of Location.t * string

let fail loc msg = raise (Parse_error (loc, msg))

type state = {
  lex : Lexer.t;
  scope : (string, Ir.value) Hashtbl.t;  (* SSA name -> value *)
}

let lookup_value st name loc =
  match Hashtbl.find_opt st.scope name with
  | Some v -> v
  | None -> fail loc (Printf.sprintf "use of undefined value %%%s" name)

let define_value st name v = Hashtbl.replace st.scope name v

let rec parse_attr_value st =
  match Lexer.next st.lex with
  | Lexer.INT n, _ -> Attribute.Int n
  | Lexer.STRING s, _ -> Attribute.String s
  | Lexer.AT s, _ -> Attribute.Symbol s
  | Lexer.IDENT "true", _ -> Attribute.Bool true
  | Lexer.IDENT "false", _ -> Attribute.Bool false
  | Lexer.IDENT "unit", _ -> Attribute.Unit
  | Lexer.LBRACKET, _ ->
    let rec go acc =
      if Lexer.accept st.lex Lexer.RBRACKET then List.rev acc
      else begin
        let v = parse_attr_value st in
        if Lexer.accept st.lex Lexer.COMMA then go (v :: acc)
        else begin
          Lexer.expect st.lex Lexer.RBRACKET;
          List.rev (v :: acc)
        end
      end
    in
    Attribute.Array (go [])
  | Lexer.LBRACE, _ -> Attribute.Dict (parse_attr_entries st)
  | Lexer.BANG, loc ->
    let kind = Lexer.expect_ident st.lex in
    if kind <> "ty" then fail loc "expected !ty<...> attribute"
    else begin
      Lexer.expect st.lex Lexer.LANGLE;
      let t = Type_parser.parse st.lex in
      Lexer.expect st.lex Lexer.RANGLE;
      Attribute.Type t
    end
  | got, loc -> fail loc ("expected attribute value, found " ^ Lexer.token_to_string got)

and parse_attr_entries st =
  (* Assumes the opening brace is already consumed; consumes the
     closing brace. *)
  if Lexer.accept st.lex Lexer.RBRACE then []
  else begin
    let rec go acc =
      let key = Lexer.expect_ident st.lex in
      Lexer.expect st.lex Lexer.EQUAL;
      let v = parse_attr_value st in
      let acc = (key, v) :: acc in
      if Lexer.accept st.lex Lexer.COMMA then go acc
      else begin
        Lexer.expect st.lex Lexer.RBRACE;
        List.rev acc
      end
    in
    go []
  end

let parse_loc st =
  (* 'loc' '(' STRING [':' INT ':' INT] ')' — optional trailer. *)
  match Lexer.peek_token st.lex with
  | Lexer.IDENT "loc" ->
    ignore (Lexer.next st.lex);
    Lexer.expect st.lex Lexer.LPAREN;
    let s =
      match Lexer.next st.lex with
      | Lexer.STRING s, _ -> s
      | got, loc -> fail loc ("expected string in loc(...), found " ^ Lexer.token_to_string got)
    in
    let result =
      if Lexer.accept st.lex Lexer.COLON then begin
        let line = Lexer.expect_int st.lex in
        Lexer.expect st.lex Lexer.COLON;
        let col = Lexer.expect_int st.lex in
        Location.file ~file:s ~line ~col
      end
      else Location.name s
    in
    Lexer.expect st.lex Lexer.RPAREN;
    result
  | _ -> Location.unknown

let rec parse_op st =
  (* Optional results. *)
  let results =
    match Lexer.peek_token st.lex with
    | Lexer.PERCENT _ ->
      let rec go acc =
        match Lexer.next st.lex with
        | Lexer.PERCENT name, _ ->
          if Lexer.accept st.lex Lexer.COMMA then go (name :: acc)
          else begin
            Lexer.expect st.lex Lexer.EQUAL;
            List.rev (name :: acc)
          end
        | got, loc -> fail loc ("expected %result, found " ^ Lexer.token_to_string got)
      in
      go []
    | _ -> []
  in
  let name, name_loc =
    match Lexer.next st.lex with
    | Lexer.STRING s, loc -> (s, loc)
    | got, loc -> fail loc ("expected op name string, found " ^ Lexer.token_to_string got)
  in
  (* Operands. *)
  Lexer.expect st.lex Lexer.LPAREN;
  let operands =
    let rec go acc =
      match Lexer.peek_token st.lex with
      | Lexer.RPAREN ->
        ignore (Lexer.next st.lex);
        List.rev acc
      | _ -> (
        match Lexer.next st.lex with
        | Lexer.PERCENT n, loc ->
          let v = lookup_value st n loc in
          if Lexer.accept st.lex Lexer.COMMA then go (v :: acc)
          else begin
            Lexer.expect st.lex Lexer.RPAREN;
            List.rev (v :: acc)
          end
        | got, loc -> fail loc ("expected %operand, found " ^ Lexer.token_to_string got))
    in
    go []
  in
  (* Optional regions. *)
  let regions =
    if Lexer.peek_token st.lex = Lexer.LPAREN then begin
      ignore (Lexer.next st.lex);
      let rec go acc =
        let r = parse_region st in
        if Lexer.accept st.lex Lexer.COMMA then go (r :: acc)
        else begin
          Lexer.expect st.lex Lexer.RPAREN;
          List.rev (r :: acc)
        end
      in
      go []
    end
    else []
  in
  (* Optional attributes. *)
  let attrs =
    if Lexer.accept st.lex Lexer.LBRACE then parse_attr_entries st else []
  in
  (* Type signature. *)
  Lexer.expect st.lex Lexer.COLON;
  Lexer.expect st.lex Lexer.LPAREN;
  let operand_types =
    let rec go acc =
      if Lexer.accept st.lex Lexer.RPAREN then List.rev acc
      else begin
        let t = Type_parser.parse st.lex in
        if Lexer.accept st.lex Lexer.COMMA then go (t :: acc)
        else begin
          Lexer.expect st.lex Lexer.RPAREN;
          List.rev (t :: acc)
        end
      end
    in
    go []
  in
  Lexer.expect st.lex Lexer.ARROW;
  Lexer.expect st.lex Lexer.LPAREN;
  let result_types =
    let rec go acc =
      if Lexer.accept st.lex Lexer.RPAREN then List.rev acc
      else begin
        let t = Type_parser.parse st.lex in
        if Lexer.accept st.lex Lexer.COMMA then go (t :: acc)
        else begin
          Lexer.expect st.lex Lexer.RPAREN;
          List.rev (t :: acc)
        end
      end
    in
    go []
  in
  let loc = parse_loc st in
  if List.length operand_types <> List.length operands then
    fail name_loc "operand count does not match operand type list";
  if List.length result_types <> List.length results then
    fail name_loc "result count does not match result type list";
  (* Check declared operand types against the resolved values. *)
  List.iter2
    (fun v t ->
      if not (Typ.equal v.Ir.v_type t) then
        fail name_loc
          (Printf.sprintf "operand type mismatch: value has %s, signature says %s"
             (Typ.to_string v.Ir.v_type) (Typ.to_string t)))
    operands operand_types;
  let op =
    Ir.Op.create ~attrs ~regions ~loc name ~operands ~result_types
      ~result_hints:(List.map (fun n -> Some n) results)
  in
  List.iteri (fun i n -> define_value st n (Ir.Op.result op i)) results;
  op

and parse_region st =
  Lexer.expect st.lex Lexer.LBRACE;
  let rec go acc =
    match Lexer.peek_token st.lex with
    | Lexer.RBRACE ->
      ignore (Lexer.next st.lex);
      List.rev acc
    | _ -> go (parse_block st :: acc)
  in
  let blocks = go [] in
  Ir.Region.create ~blocks ()

and parse_block st =
  (match Lexer.next st.lex with
  | Lexer.CARET _, _ -> ()
  | got, loc -> fail loc ("expected block label ^.., found " ^ Lexer.token_to_string got));
  Lexer.expect st.lex Lexer.LPAREN;
  let args =
    let rec go acc =
      if Lexer.accept st.lex Lexer.RPAREN then List.rev acc
      else begin
        match Lexer.next st.lex with
        | Lexer.PERCENT n, _ ->
          Lexer.expect st.lex Lexer.COLON;
          let t = Type_parser.parse st.lex in
          let acc = (n, t) :: acc in
          if Lexer.accept st.lex Lexer.COMMA then go acc
          else begin
            Lexer.expect st.lex Lexer.RPAREN;
            List.rev acc
          end
        | got, loc -> fail loc ("expected %blockarg, found " ^ Lexer.token_to_string got)
      end
    in
    go []
  in
  Lexer.expect st.lex Lexer.COLON;
  let block =
    Ir.Block.create
      ~arg_hints:(List.map (fun (n, _) -> Some n) args)
      (List.map snd args)
  in
  List.iteri (fun i (n, _) -> define_value st n (Ir.Block.arg block i)) args;
  let rec go () =
    match Lexer.peek_token st.lex with
    | Lexer.RBRACE | Lexer.CARET _ -> ()
    | _ ->
      Ir.Block.append block (parse_op st);
      go ()
  in
  go ();
  block

let parse_string ?(file = "<input>") src =
  let st = { lex = Lexer.create ~file src; scope = Hashtbl.create 64 } in
  let op = parse_op st in
  (match Lexer.peek st.lex with
  | Lexer.EOF, _ -> ()
  | got, loc -> fail loc ("trailing input: " ^ Lexer.token_to_string got));
  op

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_string ~file:path src
