(* The GEMM processing-element array (paper Sections 7.3 and 8): nested
   unroll_for loops describing a 16x16 grid of multiply-accumulate PEs,
   compiled to Verilog and simulated at the RTL level.

     dune exec examples/systolic_gemm.exe *)

open Hir_dialect
module Emit = Hir_codegen.Emit
module Harness = Hir_rtl.Harness

let () =
  Ops.register ();
  let a, b = Hir_kernels.Gemm.make_inputs ~seed:99 in

  (* Interpreter run: latency and traffic. *)
  let m, f = Hir_kernels.Gemm.build () in
  let interp_result, _ =
    Interp.run ~module_op:m ~func:f
      [ Interp.Tensor a; Interp.Tensor b; Interp.Out_tensor ]
  in
  Printf.printf "interpreter: %d cycles for 16x16x16 MACs (4096 multiplies)\n"
    interp_result.Interp.cycles;
  Printf.printf "             -> %d multiplies per cycle on average\n\n"
    (4096 / interp_result.Interp.cycles * 1);

  (* Compile to Verilog and measure resources. *)
  let m, f = Hir_kernels.Gemm.build () in
  let emitted = Emit.compile ~optimize:true ~module_op:m ~top:f () in
  let usage = Hir_resources.Model.design_usage emitted.Emit.design in
  Format.printf "resources: %a\n" Hir_resources.Model.pp usage;
  Printf.printf "           (256 PEs x 3 DSP48s per 32-bit multiply = 768 DSPs)\n\n";

  (* RTL simulation against the software reference. *)
  print_endline "running the generated Verilog in the RTL simulator...";
  let result, agents =
    Harness.run ~emitted
      ~inputs:[ Harness.Tensor a; Harness.Tensor b; Harness.Out_tensor ]
      ~cycles:interp_result.Interp.cycles ()
  in
  (match result.Harness.failures with
  | [] -> print_endline "no UB assertions fired"
  | f :: _ ->
    Printf.printf "assertion at cycle %d: %s\n" f.Hir_rtl.Sim.at_cycle
      f.Hir_rtl.Sim.message);
  let out = Harness.nth_tensor agents 2 in
  let expected = Hir_kernels.Gemm.reference a b in
  let ok = ref 0 in
  Array.iteri
    (fun i e ->
      match out.(i) with
      | Some got when Bitvec.equal got e -> incr ok
      | _ -> ())
    expected;
  Printf.printf "RTL result: %d/%d elements match the reference\n" !ok
    (Array.length expected)
