(* Tests for the optimization passes of Sections 6.2-6.4 and the
   unroll expansion of Section 7.3, including end-to-end semantics
   preservation on every evaluation kernel. *)

open Hir_ir
open Hir_dialect

let () = Ops.register ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let count_ops root name = List.length (Ir.Walk.find_all root name)

let engine () = Diagnostic.Engine.create ()

let verify_clean m =
  let e = engine () in
  (match Verify.verify m with
  | Ok () -> ()
  | Error err -> List.iter (Diagnostic.Engine.emit e) (Diagnostic.Engine.to_list err));
  Verify_schedule.verify_module e m;
  if Diagnostic.Engine.has_errors e then
    Alcotest.failf "IR must verify after pass:\n%s" (Diagnostic.Engine.to_string e)

(* ------------------------------------------------------------------ *)
(* DCE                                                                 *)

let test_dce () =
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"f" ~args:[ Builder.arg "x" Typ.i32 ]
      ~results:[ (Typ.i32, 0) ]
      (fun b args _t ->
        match args with
        | [ x ] ->
          let dead1 = Builder.add b x x in
          let _dead2 = Builder.mult b dead1 x in
          let live = Builder.add b x x in
          Builder.return_ b [ live ]
        | _ -> assert false)
  in
  check_int "before" 3 (count_ops m "hir.add" + count_ops m "hir.mult");
  let changed = Passes.run_dce m in
  check_bool "changed" true changed;
  (* dead2 goes first, then dead1 becomes dead; live add remains. *)
  check_int "after" 1 (count_ops m "hir.add" + count_ops m "hir.mult");
  verify_clean m;
  check_bool "idempotent" false (Passes.run_dce m)

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)

let test_const_fold () =
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"f"
      ~args:[ Builder.arg "O" (Types.memref ~dims:[ 64 ] ~elem:Typ.i32 ~port:Types.Write ()) ]
      (fun b args t ->
        match args with
        | [ o ] ->
          let c3 = Builder.constant b 3 in
          let c4 = Builder.constant b 4 in
          let sum = Builder.add b c3 c4 in      (* 7 *)
          let prod = Builder.mult b sum c4 in   (* 28 *)
          Builder.mem_write b prod o [ sum ] ~at:Builder.(t @>> 0);
          Builder.return_ b []
        | _ -> assert false)
  in
  let changed = Passes.run_const_fold m in
  check_bool "changed" true changed;
  check_int "no arith left" 0 (count_ops m "hir.add" + count_ops m "hir.mult");
  (* The write's operands are now constants 28 and 7. *)
  let write = List.hd (Ir.Walk.find_all m "hir.mem_write") in
  check_int "value folded" 28
    (Option.get (Ops.as_constant (Ops.mem_write_value write)));
  check_int "address folded" 7
    (Option.get (Ops.as_constant (List.hd (Ops.mem_write_indices write))));
  verify_clean m

(* ------------------------------------------------------------------ *)
(* CSE                                                                 *)

let test_cse () =
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"f" ~args:[ Builder.arg "x" Typ.i32 ]
      ~results:[ (Typ.i32, 0) ]
      (fun b args _t ->
        match args with
        | [ x ] ->
          let a = Builder.add b x x in
          let bb = Builder.add b x x in  (* duplicate *)
          let s = Builder.mult b a bb in
          Builder.return_ b [ s ]
        | _ -> assert false)
  in
  check_int "before" 2 (count_ops m "hir.add");
  check_bool "changed" true (Passes.run_cse m);
  check_int "after" 1 (count_ops m "hir.add");
  let mult = List.hd (Ir.Walk.find_all m "hir.mult") in
  check_bool "operands unified" true
    (Ir.Value.equal (Ir.Op.operand mult 0) (Ir.Op.operand mult 1));
  verify_clean m

let test_cse_respects_scope () =
  (* Identical ops in two sibling loop bodies must NOT be merged: the
     surviving one would not dominate the other's uses. *)
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"f"
      ~args:[ Builder.arg "O" (Types.memref ~dims:[ 8 ] ~elem:Typ.i32 ~port:Types.Write ()) ]
      (fun b args t ->
        match args with
        | [ o ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          let c8 = Builder.constant b 8 in
          let body b ~iv ~ti =
            let two_i = Builder.add b iv iv in
            let d = Builder.delay b two_i ~by:1 ~at:Builder.(ti @>> 0) in
            let iv1 = Builder.delay b iv ~by:1 ~at:Builder.(ti @>> 0) in
            Builder.mem_write b d o [ iv1 ] ~at:Builder.(ti @>> 1);
            Builder.yield b ~at:Builder.(ti @>> 1)
          in
          let tf1 = Builder.for_loop b ~lb:c0 ~ub:c8 ~step:c1 ~at:Builder.(t @>> 1) body in
          let _ = Builder.for_loop b ~lb:c0 ~ub:c8 ~step:c1 ~at:Builder.(tf1 @>> 1) body in
          Builder.return_ b []
        | _ -> assert false)
  in
  ignore (Passes.run_cse m);
  (* The adds use different induction variables so they can't merge
     anyway; the point is that CSE must not crash or corrupt scoping,
     and the result still verifies. *)
  check_int "adds preserved" 2 (count_ops m "hir.add");
  verify_clean m

(* ------------------------------------------------------------------ *)
(* Strength reduction                                                  *)

let test_strength_reduction () =
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"f" ~args:[ Builder.arg "x" Typ.i32 ]
      ~results:[ (Typ.i32, 0); (Typ.i32, 0); (Typ.i32, 0) ]
      (fun b args _t ->
        match args with
        | [ x ] ->
          let c8 = Builder.constant b 8 in
          let c1 = Builder.constant b 1 in
          let c0 = Builder.constant b 0 in
          let m8 = Builder.mult b x c8 in  (* -> shl 3 *)
          let m1 = Builder.mult b x c1 in  (* -> x *)
          let a0 = Builder.add b x c0 in   (* -> x *)
          Builder.return_ b [ m8; m1; a0 ]
        | _ -> assert false)
  in
  check_bool "changed" true (Passes.run_strength_reduction m);
  check_int "mults gone" 0 (count_ops m "hir.mult");
  check_int "one shift" 1 (count_ops m "hir.shl");
  let shl = List.hd (Ir.Walk.find_all m "hir.shl") in
  check_int "shift amount" 3 (Option.get (Ops.as_constant (Ir.Op.operand shl 1)));
  verify_clean m

let test_shift_fold_guard () =
  (* The folder must refuse shift counts OCaml's lsl/lsr/asr leave
     undefined (negative or >= Sys.int_size); hardware semantics for
     those belong to the RTL, not to an int-level fold. *)
  check_bool "shl in range folds" true (Passes.fold_binary "hir.shl" 1 3 = Some 8);
  check_bool "shl count 70" true (Passes.fold_binary "hir.shl" 1 70 = None);
  check_bool "shl count int_size" true
    (Passes.fold_binary "hir.shl" 1 Sys.int_size = None);
  check_bool "shl negative count" true (Passes.fold_binary "hir.shl" 1 (-1) = None);
  check_bool "shrl out of range" true (Passes.fold_binary "hir.shrl" 4 (-2) = None);
  check_bool "shra out of range" true (Passes.fold_binary "hir.shra" 4 100 = None);
  check_bool "shrl in range folds" true (Passes.fold_binary "hir.shrl" 8 2 = Some 2);
  (* In IR: canonicalize must leave the unfoldable shift alone rather
     than crash or materialize an undefined value. *)
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"f" ~args:[ Builder.arg "x" Typ.i32 ]
      ~results:[ (Typ.i32, 0) ]
      (fun b args _t ->
        match args with
        | [ x ] ->
          let c1 = Builder.constant b 1 in
          let c70 = Builder.constant b 70 in
          let s = Builder.shl b c1 c70 in
          let a = Builder.add b x s in
          Builder.return_ b [ a ]
        | _ -> assert false)
  in
  ignore (Passes.run_canonicalize m);
  check_int "unfoldable shl survives" 1 (count_ops m "hir.shl");
  verify_clean m

(* ------------------------------------------------------------------ *)
(* Delay elimination                                                   *)

let test_delay_elim () =
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"f" ~args:[ Builder.arg "x" Typ.i32 ]
      ~results:[ (Typ.i32, 1); (Typ.i32, 1); (Typ.i32, 3) ]
      (fun b args t ->
        match args with
        | [ x ] ->
          let d1 = Builder.delay b x ~by:1 ~at:Builder.(t @>> 0) in
          let d1' = Builder.delay b x ~by:1 ~at:Builder.(t @>> 0) in  (* dup *)
          let d3 = Builder.delay b x ~by:3 ~at:Builder.(t @>> 0) in  (* chains *)
          Builder.return_ b [ d1; d1'; d3 ]
        | _ -> assert false)
  in
  check_int "before" 3 (count_ops m "hir.delay");
  check_bool "changed" true (Passes.run_delay_elim m);
  check_int "after (dup removed)" 2 (count_ops m "hir.delay");
  (* Total shift-register depth drops from 1+1+3=5 to 1+2=3. *)
  let total_depth =
    List.fold_left
      (fun acc op -> acc + Ops.delay_by op)
      0
      (Ir.Walk.find_all m "hir.delay")
  in
  check_int "total depth" 3 total_depth;
  verify_clean m

(* ------------------------------------------------------------------ *)
(* Precision optimization (Table 4)                                    *)

let test_precision_transpose_semantics () =
  let m, f = Hir_kernels.Transpose.build () in
  check_bool "changed" true (Precision_opt.run m);
  verify_clean m;
  (* The 16-iteration loop induction variables fit in 4 bits, and the
     delayed address register shrinks with its input. *)
  let fors = Ir.Walk.find_all f "hir.for" in
  List.iter
    (fun loop ->
      match Ir.Value.typ (Ops.loop_induction_var loop) with
      | Typ.Int w -> check_int "narrowed iv" 4 w
      | _ -> Alcotest.fail "iv must stay integer")
    fors;
  List.iter
    (fun d ->
      match Ir.Value.typ (Ir.Op.result d 0) with
      | Typ.Int w -> check_bool "narrow delay" true (w <= 4)
      | _ -> ())
    (Ir.Walk.find_all f "hir.delay");
  let input = Hir_kernels.Transpose.make_input ~seed:11 in
  let _, tensors =
    Interp.run ~module_op:m ~func:f [ Interp.Tensor input; Interp.Out_tensor ]
  in
  let out = Interp.tensor_snapshot (tensors 1) ~cycle:max_int in
  let expected = Hir_kernels.Transpose.reference input in
  Array.iteri
    (fun i v ->
      match v with
      | Some got when Bitvec.equal got expected.(i) -> ()
      | _ -> Alcotest.failf "mismatch at %d after precision opt" i)
    out

let test_precision_range_analysis () =
  let m, f = Hir_kernels.Histogram.build () in
  ignore m;
  let _ = Precision_opt.run m in
  verify_clean m;
  (* 256-bound loops narrow to 8 bits… the iv ranges are [0,255]. *)
  let fors = Ir.Walk.find_all f "hir.for" in
  check_int "three loops" 3 (List.length fors);
  List.iter
    (fun loop ->
      match Ir.Value.typ (Ops.loop_induction_var loop) with
      | Typ.Int w -> check_int "narrowed to 8" 8 w
      | _ -> Alcotest.fail "iv must stay integer")
    fors

(* ------------------------------------------------------------------ *)
(* Unrolling                                                           *)

let test_unroll_simple () =
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"f"
      ~args:
        [ Builder.arg "O"
            (Types.memref ~packing:(Some []) ~dims:[ 4 ] ~elem:Typ.i32
               ~port:Types.Write ()) ]
      (fun b args t ->
        match args with
        | [ o ] ->
          let _tf =
            Builder.unroll_for b ~lb:0 ~ub:4 ~step:1 ~at:Builder.(t @>> 0)
              (fun b ~iv ~ti ->
                Builder.yield b ~at:Builder.(ti @>> 0);
                let v = Builder.add b iv iv in
                Builder.mem_write b v o [ iv ] ~at:Builder.(ti @>> 0))
          in
          Builder.return_ b []
        | _ -> assert false)
  in
  check_bool "changed" true (Unroll.run m);
  check_int "no unroll_for left" 0 (count_ops m "hir.unroll_for");
  check_int "4 writes" 4 (count_ops m "hir.mem_write");
  verify_clean m

let test_unroll_gemm_semantics () =
  let m, f = Hir_kernels.Gemm.build () in
  ignore (Unroll.run m);
  check_int "fully expanded" 0 (count_ops m "hir.unroll_for");
  (* 256 PE reduction loops + 1 load loop. *)
  check_int "for loops" 257 (count_ops f "hir.for");
  verify_clean m;
  let a, bm = Hir_kernels.Gemm.make_inputs ~seed:21 in
  let _, tensors =
    Interp.run ~module_op:m ~func:f
      [ Interp.Tensor a; Interp.Tensor bm; Interp.Out_tensor ]
  in
  let out = Interp.tensor_snapshot (tensors 2) ~cycle:max_int in
  let expected = Hir_kernels.Gemm.reference a bm in
  Array.iteri
    (fun i v ->
      match v with
      | Some got when Bitvec.equal got expected.(i) -> ()
      | _ -> Alcotest.failf "gemm mismatch at %d after unroll" i)
    out

(* ------------------------------------------------------------------ *)
(* Full pipeline preserves every kernel                                *)

let pipeline_case kernel () =
  let m, _f = kernel.Hir_kernels.Kernels.build () in
  ignore (Unroll.run m);
  ignore (Passes.run_canonicalize m);
  ignore (Precision_opt.run m);
  ignore (Passes.run_delay_elim m);
  verify_clean m

(* ------------------------------------------------------------------ *)
(* Use-list invariant: Verify.verify includes a use-chain consistency
   check (every operand slot appears exactly once in its value's use
   list, and no chain node points outside the tree), so running the
   verifier after each IR-producing stage proves the chains survive
   building, printing/parsing, cloning, and every pass. *)

let use_list_case kernel () =
  let m, _f = kernel.Hir_kernels.Kernels.build () in
  verify_clean m;
  (* A deep clone links its own slots as it is built. *)
  let clone = Ir.Clone.clone_op m in
  verify_clean clone;
  ignore (Unroll.run m);
  verify_clean m;
  ignore (Passes.run_canonicalize m);
  verify_clean m;
  ignore (Precision_opt.run m);
  verify_clean m;
  ignore (Passes.run_delay_elim m);
  verify_clean m;
  ignore (Retime.run m);
  verify_clean m

let test_use_lists_after_parse () =
  (* Round-trip a kernel through the textual format: the parser builds
     ops via Op.create, so the reparsed module's chains must verify. *)
  let m, _f = Hir_kernels.Transpose.build () in
  let text = Printer.op_to_string m in
  let reparsed = Parser.parse_string ~file:"reparse.hir" text in
  verify_clean reparsed

(* ------------------------------------------------------------------ *)
(* Driver convergence: on every built-in kernel (after full unrolling,
   the largest IR we produce) the greedy driver must reach a fixpoint
   by draining its worklist, never by hitting the round backstop. *)

let convergence_case kernel () =
  let m, _f = kernel.Hir_kernels.Kernels.build () in
  ignore (Unroll.run m);
  let stats = Passes.run_canonicalize_stats m in
  check_bool "no backstop" false stats.Rewrite.ds_backstop;
  verify_clean m;
  (* A second run must be a no-op: the first reached a true fixpoint. *)
  let again = Passes.run_canonicalize_stats m in
  check_bool "fixpoint" false again.Rewrite.ds_changed

let () =
  Alcotest.run "passes"
    [
      ( "scalar",
        [
          Alcotest.test_case "dce" `Quick test_dce;
          Alcotest.test_case "const fold" `Quick test_const_fold;
          Alcotest.test_case "cse" `Quick test_cse;
          Alcotest.test_case "cse scoping" `Quick test_cse_respects_scope;
          Alcotest.test_case "strength reduction" `Quick test_strength_reduction;
          Alcotest.test_case "shift fold guard" `Quick test_shift_fold_guard;
          Alcotest.test_case "delay elimination" `Quick test_delay_elim;
        ] );
      ( "precision (Table 4)",
        [
          Alcotest.test_case "transpose semantics" `Quick
            test_precision_transpose_semantics;
          Alcotest.test_case "histogram ranges" `Quick test_precision_range_analysis;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "simple" `Quick test_unroll_simple;
          Alcotest.test_case "gemm semantics" `Quick test_unroll_gemm_semantics;
        ] );
      ( "pipeline verifies on all kernels",
        List.map
          (fun k ->
            Alcotest.test_case k.Hir_kernels.Kernels.name `Quick (pipeline_case k))
          Hir_kernels.Kernels.all );
      ( "use-list invariant",
        Alcotest.test_case "parse round-trip" `Quick test_use_lists_after_parse
        :: List.map
             (fun k ->
               Alcotest.test_case k.Hir_kernels.Kernels.name `Quick (use_list_case k))
             Hir_kernels.Kernels.all );
      ( "driver converges without backstop",
        List.map
          (fun k ->
            Alcotest.test_case k.Hir_kernels.Kernels.name `Quick (convergence_case k))
          Hir_kernels.Kernels.all );
    ]
