(* Deterministic pseudo-random numbers for the fuzzer (splitmix64).

   The fuzzer's contract is that [hirc fuzz N --seed S] replays the
   exact same inputs on every machine and every OCaml release, so we
   cannot use [Stdlib.Random] (its algorithm and its default state
   handling have changed across versions).  Splitmix64 is tiny, fast,
   and fully specified by its constants. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, bound).  The modulo bias is irrelevant for fuzzing. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let bool t = Int64.equal (Int64.logand (next_int64 t) 1L) 1L

let choose t arr = arr.(int t (Array.length arr))

(* A fresh generator whose stream is independent of [t]'s future. *)
let split t = { state = next_int64 t }
