(* Post-emission outlining: the module-definition cache.

   Emission tags every Verilog item/ff statement with the emission
   group of the HIR op that produced it (unrolled-loop clones are
   tagged by the Unroll pass, generator-built kernels by
   [Builder.group]).  This module takes the tagged item stream of one
   emitted module and outlines repeated groups into shared module
   definitions:

   - each group is canonicalized into a rename-invariant form: internal
     declarations become [x0..], names referenced but not declared
     become input ports [i0..] in first-reference order, declarations
     referenced from outside the group are exported through output
     ports [o0..], nested instances become [u0..];
   - structurally identical groups (identical canonical printed text)
     are stored once in a [registry] under a content-addressed name
     ([hirdef_<digest>]) and each occurrence is replaced by an
     [Instance] plus wire declarations for its exported outputs;
   - a group is only outlined when it repeats (>= 2 occurrences) and
     the replacement actually shrinks the printed output — so small
     designs keep byte-identical flat emission.

   Groups that cannot be outlined keep their items in place, tags
   dropped: the zero-outlining case reproduces the flat item stream
   exactly. *)

module V = Hir_verilog.Ast
module P = Hir_verilog.Pretty

(* ------------------------------------------------------------------ *)
(* Definition registry: canonical text -> content-addressed module.    *)

type registry = {
  mutable r_defs : V.module_def list;  (* reverse first-use order *)
  r_by_text : (string, string) Hashtbl.t;  (* canonical text -> name *)
}

let create_registry () = { r_defs = []; r_by_text = Hashtbl.create 16 }

let defs r = List.rev r.r_defs

(* The canonical text is printed with this placeholder name, so the
   digest depends only on structure, never on the final name. *)
let placeholder = "hirdef"

let register r (m : V.module_def) =
  let text = P.module_to_string m in
  match Hashtbl.find_opt r.r_by_text text with
  | Some name -> name
  | None ->
    let name = "hirdef_" ^ Digest.to_hex (Digest.string text) in
    Hashtbl.replace r.r_by_text text name;
    r.r_defs <- { m with V.mod_name = name } :: r.r_defs;
    name

(* ------------------------------------------------------------------ *)
(* Name traversal and renaming over the Verilog AST                    *)

let rec iter_expr_refs f = function
  | V.Const _ -> ()
  | V.Ref n -> f n
  | V.Index (n, a) ->
    f n;
    iter_expr_refs f a
  | V.Slice (e, _, _) -> iter_expr_refs f e
  | V.Unop (_, e) -> iter_expr_refs f e
  | V.Binop (_, a, b) ->
    iter_expr_refs f a;
    iter_expr_refs f b
  | V.Ternary (c, a, b) ->
    iter_expr_refs f c;
    iter_expr_refs f a;
    iter_expr_refs f b
  | V.Concat es -> List.iter (iter_expr_refs f) es

(* [flv] sees names that are written (assign targets, ff lvalues);
   [f] sees names that are read. *)
let rec iter_stmt_refs ~flv f = function
  | V.Nonblocking (lv, e) ->
    (match lv with
    | V.Lref n -> flv n
    | V.Lindex (n, a) ->
      flv n;
      iter_expr_refs f a);
    iter_expr_refs f e
  | V.If (c, t, e) ->
    iter_expr_refs f c;
    List.iter (iter_stmt_refs ~flv f) t;
    List.iter (iter_stmt_refs ~flv f) e
  | V.Assert_stmt { cond; _ } -> iter_expr_refs f cond

let iter_item_refs ~flv f = function
  | V.Wire_decl _ | V.Reg_decl _ | V.Mem_decl _ | V.Comment _ -> ()
  | V.Assign { target; expr } ->
    flv target;
    iter_expr_refs f expr
  | V.Always_ff stmts -> List.iter (iter_stmt_refs ~flv f) stmts
  | V.Instance { connections; _ } ->
    List.iter (fun (_, e) -> iter_expr_refs f e) connections

let rec rename_expr f = function
  | V.Const _ as e -> e
  | V.Ref n -> V.Ref (f n)
  | V.Index (n, a) -> V.Index (f n, rename_expr f a)
  | V.Slice (e, hi, lo) -> V.Slice (rename_expr f e, hi, lo)
  | V.Unop (op, e) -> V.Unop (op, rename_expr f e)
  | V.Binop (op, a, b) -> V.Binop (op, rename_expr f a, rename_expr f b)
  | V.Ternary (c, a, b) -> V.Ternary (rename_expr f c, rename_expr f a, rename_expr f b)
  | V.Concat es -> V.Concat (List.map (rename_expr f) es)

let rename_lvalue f = function
  | V.Lref n -> V.Lref (f n)
  | V.Lindex (n, a) -> V.Lindex (f n, rename_expr f a)

let rec rename_stmt f = function
  | V.Nonblocking (lv, e) -> V.Nonblocking (rename_lvalue f lv, rename_expr f e)
  | V.If (c, t, e) ->
    V.If (rename_expr f c, List.map (rename_stmt f) t, List.map (rename_stmt f) e)
  | V.Assert_stmt { cond; message } ->
    V.Assert_stmt { cond = rename_expr f cond; message }

let rename_item f = function
  | V.Wire_decl { name; width } -> V.Wire_decl { name = f name; width }
  | V.Reg_decl { name; width } -> V.Reg_decl { name = f name; width }
  | V.Mem_decl { name; width; depth; style } ->
    V.Mem_decl { name = f name; width; depth; style }
  | V.Assign { target; expr } -> V.Assign { target = f target; expr = rename_expr f expr }
  | V.Always_ff stmts -> V.Always_ff (List.map (rename_stmt f) stmts)
  | V.Instance { module_name; instance_name; connections } ->
    V.Instance
      {
        module_name;
        instance_name;
        connections = List.map (fun (p, e) -> (p, rename_expr f e)) connections;
      }
  | V.Comment _ as it -> it

(* ------------------------------------------------------------------ *)
(* Group analysis                                                      *)

type site = {
  s_gid : int;
  mutable s_items : V.item list;  (* reverse *)
  mutable s_ffs : V.stmt list;  (* reverse *)
  mutable s_first : int;  (* index of the group's first item *)
  mutable s_bad : bool;  (* structurally not outlinable *)
}

(* Canonical form of one site, plus what the call site needs to
   instantiate it. *)
type canon = {
  c_def : V.module_def;  (* mod_name = [placeholder] *)
  c_inputs : string list;  (* original names, i0.. order *)
  c_outputs : (string * int) list;  (* original name, width; o0.. order *)
  c_has_clk : bool;
}

let item_bytes it = String.length (Format.asprintf "%a" P.pp_item it) + 1
let stmt_bytes st = String.length (Format.asprintf "%a" (P.pp_stmt ~indent:4) st) + 1

let instance_for ~def_name ~inst_name c =
  let conns =
    (if c.c_has_clk then [ ("clk", V.Ref "clk") ] else [])
    @ List.mapi (fun j n -> (Printf.sprintf "i%d" j, V.Ref n)) c.c_inputs
    @ List.mapi (fun j (n, _) -> (Printf.sprintf "o%d" j, V.Ref n)) c.c_outputs
  in
  V.Instance { module_name = def_name; instance_name = inst_name; connections = conns }

let output_decls c =
  List.map (fun (n, w) -> V.Wire_decl { name = n; width = w }) c.c_outputs

(* [run] rewrites one module's tagged item/ff streams.  [names] is the
   module's name supply (for instance names); [registry] receives the
   shared definitions.  Returns the plain item and ff lists. *)
let run ~names ~registry ~(ports : V.port list) ~items ~ff =
  let strip () = (List.map snd items, List.map snd ff) in
  (* -- collect sites ----------------------------------------------- *)
  let sites : (int, site) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let site_of gid idx =
    match Hashtbl.find_opt sites gid with
    | Some s -> s
    | None ->
      let s = { s_gid = gid; s_items = []; s_ffs = []; s_first = idx; s_bad = false } in
      Hashtbl.replace sites gid s;
      order := gid :: !order;
      s
  in
  List.iteri
    (fun idx (g, it) ->
      match g with
      | Some gid ->
        let s = site_of gid idx in
        s.s_items <- it :: s.s_items
      | None -> ())
    items;
  List.iter
    (fun (g, st) ->
      match g with
      | Some gid -> (
        (* ff statements of a group that declared no items stay in
           place: such a group has no site and is never outlined. *)
        match Hashtbl.find_opt sites gid with
        | Some s -> s.s_ffs <- st :: s.s_ffs
        | None -> ())
      | None -> ())
    ff;
  if Hashtbl.length sites = 0 then strip ()
  else begin
    (* -- module-wide name facts ------------------------------------ *)
    let width = Hashtbl.create 64 in
    let mems = Hashtbl.create 8 in
    List.iter (fun p -> Hashtbl.replace width p.V.port_name p.V.width) ports;
    Hashtbl.replace width "clk" 1;
    let decl_site : (string, int) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (g, it) ->
        (match it with
        | V.Wire_decl { name; width = w } | V.Reg_decl { name; width = w } ->
          Hashtbl.replace width name w
        | V.Mem_decl { name; _ } -> Hashtbl.replace mems name ()
        | _ -> ());
        match (g, it) with
        | Some gid, (V.Wire_decl { name; _ } | V.Reg_decl { name; _ }) ->
          Hashtbl.replace decl_site name gid
        | Some gid, V.Mem_decl _ ->
          (* Storage arrays cannot cross a module boundary. *)
          (site_of gid 0).s_bad <- true
        | _ -> ())
      items;
    (* -- cross-group reference analysis ---------------------------- *)
    let external_ref = Hashtbl.create 32 in
    let mark_bad gid =
      match Hashtbl.find_opt sites gid with Some s -> s.s_bad <- true | None -> ()
    in
    let scan g =
      let f n =
        if Hashtbl.mem mems n then (
          match g with Some gid -> mark_bad gid | None -> ())
        else
          match Hashtbl.find_opt decl_site n with
          | Some owner when g <> Some owner -> Hashtbl.replace external_ref n ()
          | _ -> ()
      in
      let flv n =
        match Hashtbl.find_opt decl_site n with
        | Some owner ->
          (* Written from outside its declaring group: the declaration
             cannot move into a definition. *)
          if g <> Some owner then mark_bad owner
        | None -> (
          (* A group writing a name it does not declare (a module port,
             a shared wire, a memory) stays inline. *)
          match g with Some gid -> mark_bad gid | None -> ())
      in
      (f, flv)
    in
    List.iter
      (fun (g, it) ->
        let f, flv = scan g in
        iter_item_refs ~flv f it)
      items;
    List.iter
      (fun (g, st) ->
        let f, flv = scan g in
        iter_stmt_refs ~flv f st)
      ff;
    (* -- canonicalization ------------------------------------------ *)
    let canonicalize s =
      let sitems = List.rev s.s_items and sffs = List.rev s.s_ffs in
      if List.for_all (function V.Comment _ -> true | _ -> false) sitems && sffs = []
      then None
      else begin
        let rename = Hashtbl.create 32 in
        let decls = ref [] in
        let xcount = ref 0 in
        List.iter
          (function
            | V.Wire_decl { name; _ } | V.Reg_decl { name; _ } ->
              if not (Hashtbl.mem rename name) then begin
                Hashtbl.replace rename name (Printf.sprintf "x%d" !xcount);
                incr xcount;
                decls := name :: !decls
              end
            | _ -> ())
          sitems;
        let decls = List.rev !decls in
        let inputs = ref [] in
        let icount = ref 0 in
        let uses_clk = ref false in
        let missing_width = ref false in
        let note n =
          if n = "clk" then uses_clk := true
          else if not (Hashtbl.mem rename n) then begin
            if not (Hashtbl.mem width n) then missing_width := true;
            Hashtbl.replace rename n (Printf.sprintf "i%d" !icount);
            incr icount;
            inputs := n :: !inputs
          end
        in
        List.iter (iter_item_refs ~flv:note note) sitems;
        List.iter (iter_stmt_refs ~flv:note note) sffs;
        let inputs = List.rev !inputs in
        let outputs =
          List.filter_map
            (fun n ->
              if Hashtbl.mem external_ref n then
                match Hashtbl.find_opt width n with
                | Some w -> Some (n, w)
                | None ->
                  missing_width := true;
                  None
              else None)
            decls
        in
        if !missing_width then None
        else begin
          let rn n =
            match Hashtbl.find_opt rename n with Some x -> x | None -> n (* clk *)
          in
          let ucount = ref 0 in
          let canon_items =
            List.map
              (function
                | V.Instance { module_name; instance_name = _; connections } ->
                  let u = Printf.sprintf "u%d" !ucount in
                  incr ucount;
                  V.Instance
                    {
                      module_name;
                      instance_name = u;
                      connections =
                        List.map (fun (p, e) -> (p, rename_expr rn e)) connections;
                    }
                | it -> rename_item rn it)
              sitems
          in
          let has_clk = sffs <> [] || !uses_clk in
          let exports =
            List.mapi
              (fun j (n, _) ->
                V.Assign { target = Printf.sprintf "o%d" j; expr = V.Ref (rn n) })
              outputs
          in
          let cports =
            (if has_clk then [ { V.port_name = "clk"; dir = V.Input; width = 1 } ]
             else [])
            @ List.map
                (fun n ->
                  {
                    V.port_name = Hashtbl.find rename n;
                    dir = V.Input;
                    width = Hashtbl.find width n;
                  })
                inputs
            @ List.mapi
                (fun j (_, w) ->
                  { V.port_name = Printf.sprintf "o%d" j; dir = V.Output; width = w })
                outputs
          in
          let citems =
            canon_items @ exports
            @ if sffs = [] then [] else [ V.Always_ff (List.map (rename_stmt rn) sffs) ]
          in
          Some
            {
              c_def = { V.mod_name = placeholder; ports = cports; items = citems };
              c_inputs = inputs;
              c_outputs = outputs;
              c_has_clk = has_clk;
            }
        end
      end
    in
    (* -- dedup classes, in first-appearance order ------------------ *)
    let classes : (string, (site * canon) list ref) Hashtbl.t = Hashtbl.create 16 in
    let class_order = ref [] in
    List.iter
      (fun gid ->
        let s = Hashtbl.find sites gid in
        if not s.s_bad then
          match canonicalize s with
          | None -> ()
          | Some c -> (
            let text = P.module_to_string c.c_def in
            match Hashtbl.find_opt classes text with
            | Some l -> l := (s, c) :: !l
            | None ->
              Hashtbl.replace classes text (ref [ (s, c) ]);
              class_order := text :: !class_order))
      (List.rev !order);
    (* -- outline decision: repeats and actually shrinks ------------ *)
    let outlined : (int, string * canon) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun text ->
        let members = List.rev !(Hashtbl.find classes text) in
        if List.length members >= 2 then begin
          let flat_bytes =
            List.fold_left
              (fun acc (s, _) ->
                acc
                + List.fold_left (fun a it -> a + item_bytes it) 0 (List.rev s.s_items)
                + List.fold_left (fun a st -> a + stmt_bytes st) 0 (List.rev s.s_ffs))
              0 members
          in
          let hier_bytes =
            String.length text
            + List.fold_left
                (fun acc (_, c) ->
                  acc
                  + List.fold_left (fun a it -> a + item_bytes it) 0 (output_decls c)
                  + item_bytes (instance_for ~def_name:placeholder ~inst_name:"h0" c))
                0 members
          in
          if hier_bytes < flat_bytes then begin
            let def_name = register registry (snd (List.hd members)).c_def in
            List.iter
              (fun (s, c) -> Hashtbl.replace outlined s.s_gid (def_name, c))
              members
          end
        end)
      (List.rev !class_order);
    if Hashtbl.length outlined = 0 then strip ()
    else begin
      (* -- apply ---------------------------------------------------- *)
      let out = ref [] in
      List.iteri
        (fun idx (g, it) ->
          match g with
          | Some gid when Hashtbl.mem outlined gid ->
            let def_name, c = Hashtbl.find outlined gid in
            let s = Hashtbl.find sites gid in
            if idx = s.s_first then begin
              List.iter (fun d -> out := d :: !out) (output_decls c);
              let inst_name = Names.fresh names "h" in
              out := instance_for ~def_name ~inst_name c :: !out
            end
          | _ -> out := it :: !out)
        items;
      let out_ff =
        List.filter_map
          (fun (g, st) ->
            match g with
            | Some gid when Hashtbl.mem outlined gid -> None
            | _ -> Some st)
          ff
      in
      (List.rev !out, out_ff)
    end
  end
