(* Overlapped execution of two stencil tasks (paper Listing 3 and
   Section 5.3: deterministic, synchronization-free task-level
   parallelism).

   stencilA reads the input array and writes the intermediate buffer
   sequentially; stencilB starts a fixed six cycles later — just after
   enough data exists — and from then on the two run in lock-step, one
   element per cycle, with no FIFOs, no handshakes and no
   back-pressure.  The total latency is barely above one stencil's
   latency instead of twice it. *)

open Hir_ir
open Hir_dialect

let name = "task_parallel"
let n = Stencil1d.n

(* stencilB consumes what stencilA produces: A writes indices
   1 .. n-2, so B starts at index 2 (its window needs B[1], B[2]). *)
let stage2_lb = 2
let stage2_ub = n - 2

let lag = 6

let build_into m =
  let stencil_a = Stencil1d.build_into ~func_name:"stencilA" m in
  let stencil_b =
    Stencil1d.build_into ~func_name:"stencilB" ~lb:stage2_lb ~ub:stage2_ub m
  in
  Builder.func m ~name
    ~args:
      [
        Builder.arg "Ai" (Types.memref ~dims:[ n ] ~elem:Typ.i32 ~port:Types.Read ());
        Builder.arg "Cw" (Types.memref ~dims:[ n ] ~elem:Typ.i32 ~port:Types.Write ());
      ]
    (fun b args t ->
      match args with
      | [ ai; cw ] ->
        let ports =
          Builder.alloc b ~kind:Ops.Lut_ram ~dims:[ n ] ~elem:Typ.i32
            ~ports:[ Types.Read; Types.Write ]
        in
        let b_r, b_w = match ports with [ r; w ] -> (r, w) | _ -> assert false in
        let _ = Builder.call b ~callee:stencil_a [ ai; b_w ] ~at:Builder.(t @>> 0) in
        let _ = Builder.call b ~callee:stencil_b [ b_r; cw ] ~at:Builder.(t @>> lag) in
        Builder.return_ b []
      | _ -> assert false)

let build () =
  let m = Builder.create_module () in
  let f = build_into m in
  (m, f)

let reference input =
  let mid = Stencil1d.reference input in
  let final = Stencil1d.reference mid in
  final

let valid_range = (stage2_lb, stage2_ub - 1)

let make_input ~seed = Util.test_data ~seed ~n ~width:32

let check_interp ?(seed = 7) () =
  let m, f = build () in
  let input = make_input ~seed in
  let result, tensors =
    Interp.run ~module_op:m ~func:f [ Interp.Tensor input; Interp.Out_tensor ]
  in
  let out = Interp.tensor_snapshot (tensors 1) ~cycle:max_int in
  let expected = reference input in
  let lo, hi = valid_range in
  let ok = ref true in
  for i = lo to hi do
    match out.(i) with
    | Some got when Bitvec.equal got expected.(i) -> ()
    | _ -> ok := false
  done;
  if !ok then Ok result
  else Error "task_parallel output mismatch"

(* The headline property of Listing 3: overlapped latency is far below
   the sum of the two stages run back to back. *)
let overlap_summary ?(seed = 8) () =
  let m, f = build () in
  let input = make_input ~seed in
  let result, _ =
    Interp.run ~module_op:m ~func:f [ Interp.Tensor input; Interp.Out_tensor ]
  in
  let m1, f1 = Stencil1d.build () in
  let single, _ =
    Interp.run ~module_op:m1 ~func:f1 [ Interp.Tensor input; Interp.Out_tensor ]
  in
  (result.Interp.cycles, single.Interp.cycles)
