lib/kernels/gemm.ml: Array Bitvec Builder Hir_dialect Hir_ir Interp Ops Typ Types Util
