lib/ir/parser.ml: Attribute Hashtbl Ir Lexer List Location Printf Typ Type_parser
