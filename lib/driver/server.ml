(* `hirc serve` — a persistent compilation server on the service core.

   Architecture: one main-loop thread (the calling domain) owns every
   socket and does all protocol IO; compile work runs on the service
   core's worker domains.  The two meet through a completion queue and
   a self-pipe: [Service]'s on_complete callback (which runs on a
   worker) enqueues the completion and writes one byte into the pipe,
   which wakes the main loop's [select] so it can write the response
   frame from its own thread.  No socket is ever touched from two
   domains.

   Admission is continuous: a compile frame is submitted to the pool
   the moment it parses, and starts the moment a worker frees — there
   are no batch boundaries.  The pool's bounded queue turns saturation
   into an immediate `status:"rejected", reason:"overloaded"` frame
   (the client backs off and retries; nothing is silently queued or
   dropped).  Fair-share scheduling uses the connection id as the
   service client id, so one greedy connection cannot starve others.

   Cancellation: an explicit cancel frame or a client disconnect
   cancels that client's jobs — queued jobs are withdrawn without ever
   occupying a worker; running jobs are flagged and stop at the next
   guard checkpoint.  Every admitted job still produces exactly one
   completion (delivered, or counted and dropped if its connection is
   gone), which is the zero-lost-jobs invariant the swarm bench pins.

   Probes: line-JSON {"op":"health"} / {"op":"metrics"} frames, or
   plain HTTP `GET /health` / `GET /metrics` on the same socket for
   curl-style monitoring.  Metrics surface queue depth, worker and
   cache counters, aggregated per-pass/trace counters, and log-bucket
   latency histograms (queue wait and end-to-end).  A Chrome trace of
   every job's spans over the whole server lifetime (bounded by
   [cfg_max_traces]) is written on shutdown. *)

type listen = Unix_path of string | Tcp of string * int

type config = {
  cfg_listen : listen;
  cfg_workers : int;
  cfg_max_depth : int;  (* bounded queue: admission limit *)
  cfg_cache : Cache.t option;
  cfg_default_deadline : float option;  (* per-job, unless the frame says *)
  cfg_retry : Driver.retry_policy;
  cfg_trace_path : string option;
  cfg_max_traces : int;  (* retain at most this many job traces *)
  cfg_verbose : bool;
}

let default_config ~listen () =
  {
    cfg_listen = listen;
    cfg_workers = Scheduler.default_workers ();
    cfg_max_depth = 64;
    cfg_cache = None;
    cfg_default_deadline = None;
    cfg_retry = Driver.default_retry;
    cfg_trace_path = None;
    cfg_max_traces = 10_000;
    cfg_verbose = false;
  }

(* What a worker needs to run one admitted job. *)
type job_ctx = {
  jc_conn : int;
  jc_id : string;  (* the client's correlation id *)
  jc_want_verilog : bool;
  jc_job : Driver.job;
  jc_limits : Guard.limits;
  jc_trace : Trace.t;
}

type conn = {
  co_id : int;
  co_fd : Unix.file_descr;
  co_buf : Buffer.t;  (* bytes read, not yet split into lines *)
  co_jobs : (string, job_ctx Service.handle) Hashtbl.t;  (* in flight *)
  mutable co_closed : bool;
}

type t = {
  cfg : config;
  svc : (job_ctx, Driver.report) Service.t;
  epoch : float;  (* server start; all traces share it *)
  conns : (int, conn) Hashtbl.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  cq_mu : Mutex.t;
  cq : (job_ctx, Driver.report) Service.completion Queue.t;
  mutable listen_fd : Unix.file_descr option;
  mutable stopping : bool;
  mutable next_conn : int;
  mutable next_tid : int;
  (* metrics *)
  mutable submitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable n_ok : int;
  mutable n_degraded : int;
  mutable n_failed : int;
  mutable n_cancelled : int;
  queue_hist : Service.Histogram.t;  (* admission -> start *)
  total_hist : Service.Histogram.t;  (* admission -> completion *)
  agg_counters : (string, int) Hashtbl.t;  (* trace counters, all jobs *)
  mutable traces : Trace.t list;  (* newest first, capped *)
  mutable n_traces : int;
}

let logf t fmt =
  if t.cfg.cfg_verbose then Printf.eprintf ("serve: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* ------------------------------------------------------------------ *)
(* Worker-side: runs on pool domains                                   *)

let wake t =
  (* Nonblocking: a full pipe already guarantees a pending wakeup. *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) -> ()

let on_complete t c =
  Mutex.lock t.cq_mu;
  Queue.push c t.cq;
  Mutex.unlock t.cq_mu;
  wake t

(* ------------------------------------------------------------------ *)
(* Frame IO (main loop only)                                           *)

let disconnect t conn =
  if not conn.co_closed then begin
    conn.co_closed <- true;
    Hashtbl.remove t.conns conn.co_id;
    (* A gone client no longer wants its jobs: free the slots.  The
       completions (synthesized or real) still arrive and are counted;
       delivery is skipped because the conn is gone. *)
    Hashtbl.iter (fun _ h -> ignore (Service.cancel t.svc h)) conn.co_jobs;
    (try Unix.close conn.co_fd with Unix.Unix_error _ -> ());
    logf t "conn %d closed (%d jobs in flight cancelled)" conn.co_id
      (Hashtbl.length conn.co_jobs)
  end

let write_all fd s =
  let data = Bytes.of_string s in
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd data !off (len - !off)
  done

(* SIGPIPE is ignored process-wide, so a hung-up client surfaces here
   as EPIPE/ECONNRESET: a per-connection error, not a dead server. *)
let send_frame t conn j =
  if not conn.co_closed then
    try write_all conn.co_fd (Protocol.Json.to_line j)
    with Unix.Unix_error _ -> disconnect t conn

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)

let health_json t =
  let s = Service.stats t.svc in
  Protocol.Json.Obj
    [
      ("event", Protocol.Json.Str "health");
      ("status", Protocol.Json.Str (if t.stopping then "stopping" else "ok"));
      ("uptime_seconds", Protocol.Json.Num (Unix.gettimeofday () -. t.epoch));
      ("workers", Protocol.Json.Num (float_of_int s.Service.st_workers));
      ("queue_depth", Protocol.Json.Num (float_of_int s.Service.st_depth));
      ("running", Protocol.Json.Num (float_of_int s.Service.st_running));
      ("connections", Protocol.Json.Num (float_of_int (Hashtbl.length t.conns)));
    ]

let hist_json h =
  let s = Service.Histogram.summarize h in
  Protocol.Json.Obj
    [
      ("count", Protocol.Json.Num (float_of_int s.Service.Histogram.count));
      ("mean_s", Protocol.Json.Num s.Service.Histogram.mean);
      ("p50_s", Protocol.Json.Num s.Service.Histogram.p50);
      ("p90_s", Protocol.Json.Num s.Service.Histogram.p90);
      ("p99_s", Protocol.Json.Num s.Service.Histogram.p99);
      ("max_s", Protocol.Json.Num s.Service.Histogram.max);
    ]

let metrics_json t =
  let s = Service.stats t.svc in
  let num n = Protocol.Json.Num (float_of_int n) in
  let jobs =
    Protocol.Json.Obj
      [
        ("submitted", num t.submitted);
        ("rejected", num t.rejected);
        ("completed", num t.completed);
        ("ok", num t.n_ok);
        ("degraded", num t.n_degraded);
        ("failed", num t.n_failed);
        ("cancelled", num t.n_cancelled);
        ("queue_depth", num s.Service.st_depth);
        ("running", num s.Service.st_running);
        ("workers", num s.Service.st_workers);
        ("spawn_failures", num (Service.spawn_failure_count t.svc));
      ]
  in
  let cache =
    match t.cfg.cfg_cache with
    | None -> []
    | Some c ->
      [
        ( "cache",
          Protocol.Json.Obj
            [
              ("hits", num (Cache.hits c));
              ("misses", num (Cache.misses c));
              ("stores", num (Cache.store_count c));
              ("corrupt", num (Cache.corrupt_count c));
              ("faults", num (Cache.fault_count c));
            ] );
      ]
  in
  (* Aggregated trace counters: pass/pattern/cache/retry/degradation
     counts summed over every completed job. *)
  let counters =
    Hashtbl.fold (fun k v acc -> (k, num v) :: acc) t.agg_counters []
    |> List.sort compare
  in
  Protocol.Json.Obj
    ([ ("event", Protocol.Json.Str "metrics"); ("jobs", jobs) ]
    @ cache
    @ [
        ("counters", Protocol.Json.Obj counters);
        ( "latency",
          Protocol.Json.Obj
            [ ("queue", hist_json t.queue_hist); ("total", hist_json t.total_hist) ]
        );
      ])

(* One-shot HTTP for curl-style probes on the same socket. *)
let http_response t conn path =
  let status, body =
    match path with
    | "/health" -> ("200 OK", Protocol.Json.to_string (health_json t) ^ "\n")
    | "/metrics" -> ("200 OK", Protocol.Json.to_string (metrics_json t) ^ "\n")
    | _ -> ("404 Not Found", "{\"event\":\"error\",\"message\":\"unknown path\"}\n")
  in
  let resp =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: application/json\r\nContent-Length: \
       %d\r\nConnection: close\r\n\r\n%s"
      status (String.length body) body
  in
  (try write_all conn.co_fd resp with Unix.Unix_error _ -> ());
  disconnect t conn

(* ------------------------------------------------------------------ *)
(* Compile admission                                                   *)

let next_tid t =
  t.next_tid <- t.next_tid + 1;
  t.next_tid

(* Resolve a compile frame into a driver job, or the diagnostics that
   explain why it never will be one.  Bad input is a *failed* result
   (the job is at fault), not a rejection (admission was fine). *)
let job_of_req (req : Protocol.compile_req) =
  let pipeline_r =
    match req.Protocol.cr_passes with
    | None -> Ok (Pipeline.default ~optimize:true)
    | Some spec -> (
      match Pipeline.parse_located ~file:"passes" spec with
      | Ok p -> Ok p
      | Error d -> Error (Printf.sprintf "invalid pipeline spec: %s" (Hir_ir.Diagnostic.to_string d)))
  in
  match pipeline_r with
  | Error e -> Error e
  | Ok pipeline -> (
    match (req.Protocol.cr_kernel, req.Protocol.cr_source) with
    | Some k, _ -> (
      match Hir_kernels.Kernels.find k with
      | Some kernel ->
        Ok
          (Driver.job_of_builder ~pipeline ~name:kernel.Hir_kernels.Kernels.name
             kernel.Hir_kernels.Kernels.build)
      | None -> Error (Printf.sprintf "unknown kernel %s" k))
    | None, Some source ->
      let name = Option.value ~default:"<inline>" req.Protocol.cr_name in
      Ok (Driver.job_of_text ?top:req.Protocol.cr_top ~pipeline ~name source)
    | None, None -> Error "compile: needs \"kernel\" or \"source\"")

let failed_frame ~id msg =
  Protocol.Json.Obj
    [
      ("event", Protocol.Json.Str "result");
      ("id", Protocol.Json.Str id);
      ("status", Protocol.Json.Str "failed");
      ("diagnostics", Protocol.Json.Arr [ Protocol.Json.Str msg ]);
    ]

let handle_compile t conn (req : Protocol.compile_req) =
  let id = req.Protocol.cr_id in
  if Hashtbl.mem conn.co_jobs id then begin
    t.rejected <- t.rejected + 1;
    send_frame t conn (Protocol.rejected_frame ~id "duplicate-id")
  end
  else
    match job_of_req req with
    | Error msg ->
      (* Never admitted: report a failed result directly. *)
      send_frame t conn (failed_frame ~id msg)
    | Ok job ->
      let trace = Trace.create ~epoch:t.epoch () in
      Trace.set_tid trace (next_tid t);
      let limits =
        {
          Guard.deadline_s =
            (match req.Protocol.cr_deadline with
            | Some _ as d -> d
            | None -> t.cfg.cfg_default_deadline);
          work_budget = None;
        }
      in
      let ctx =
        {
          jc_conn = conn.co_id;
          jc_id = id;
          jc_want_verilog = req.Protocol.cr_want_verilog;
          jc_job = job;
          jc_limits = limits;
          jc_trace = trace;
        }
      in
      (match
         Service.submit t.svc ~client:conn.co_id ~priority:req.Protocol.cr_priority
           ctx
       with
      | Service.Accepted h ->
        t.submitted <- t.submitted + 1;
        Hashtbl.replace conn.co_jobs id h;
        logf t "conn %d: admitted %s (priority %d)" conn.co_id id
          req.Protocol.cr_priority
      | Service.Overloaded ->
        t.rejected <- t.rejected + 1;
        send_frame t conn (Protocol.rejected_frame ~id "overloaded")
      | Service.Stopped ->
        t.rejected <- t.rejected + 1;
        send_frame t conn (Protocol.rejected_frame ~id "shutting-down"))

let handle_cancel t conn id =
  match Hashtbl.find_opt conn.co_jobs id with
  | None -> send_frame t conn (Protocol.cancel_frame ~id "unknown")
  | Some h ->
    let state =
      match Service.cancel t.svc h with
      | `Cancelled -> "cancelled"  (* withdrawn from the queue *)
      | `Cancelling -> "cancelling"  (* mid-compile; flag set *)
      | `Finished -> "finished"  (* too late: real result racing in *)
    in
    send_frame t conn (Protocol.cancel_frame ~id state)

(* ------------------------------------------------------------------ *)
(* Completion delivery (main loop)                                     *)

let record_completion t (c : (job_ctx, Driver.report) Service.completion) =
  let ctx = Service.data c.Service.c_handle in
  let r = c.Service.c_result in
  t.completed <- t.completed + 1;
  (match Driver.report_status r with
  | `Ok -> t.n_ok <- t.n_ok + 1
  | `Degraded -> t.n_degraded <- t.n_degraded + 1
  | `Failed -> t.n_failed <- t.n_failed + 1
  | `Cancelled -> t.n_cancelled <- t.n_cancelled + 1);
  Service.Histogram.record t.queue_hist c.Service.c_queue_seconds;
  Service.Histogram.record t.total_hist
    (c.Service.c_queue_seconds +. c.Service.c_run_seconds);
  let bump k n =
    Hashtbl.replace t.agg_counters k
      (n + Option.value ~default:0 (Hashtbl.find_opt t.agg_counters k))
  in
  List.iter (fun (k, n) -> bump k n) (Trace.counters ctx.jc_trace);
  (* Pass counters (pattern/fold application counts) ride on the pass
     spans as stringified args; lift the numeric ones into the
     server-lifetime aggregate so /metrics surfaces them. *)
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.sp_cat = "pass" then
        List.iter
          (fun (k, v) ->
            match int_of_string_opt v with
            | Some n -> bump (s.Trace.sp_name ^ "/" ^ k) n
            | None -> ())
          s.Trace.sp_args)
    (Trace.spans ctx.jc_trace);
  if t.n_traces < t.cfg.cfg_max_traces then begin
    t.traces <- ctx.jc_trace :: t.traces;
    t.n_traces <- t.n_traces + 1
  end;
  (* Deliver, unless the client is gone. *)
  match Hashtbl.find_opt t.conns ctx.jc_conn with
  | None -> ()
  | Some conn ->
    Hashtbl.remove conn.co_jobs ctx.jc_id;
    send_frame t conn
      (Protocol.result_frame ~id:ctx.jc_id ~want_verilog:ctx.jc_want_verilog r)

let drain_completions t =
  let rec pop () =
    Mutex.lock t.cq_mu;
    let c = Queue.take_opt t.cq in
    Mutex.unlock t.cq_mu;
    match c with
    | None -> ()
    | Some c ->
      record_completion t c;
      pop ()
  in
  pop ()

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                     *)

let bind_listener = function
  | Unix_path path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, "unix:" ^ path)
  | Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.listen fd 64;
    let actual =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (fd, Printf.sprintf "tcp:%s:%d" host actual)

let handle_line t conn line =
  let line = String.trim line in
  if line = "" then ()
  else if String.length line >= 4 && String.sub line 0 4 = "GET " then begin
    (* HTTP probe: "GET /path HTTP/1.x". *)
    let path =
      match String.split_on_char ' ' line with _ :: p :: _ -> p | _ -> "/"
    in
    http_response t conn path
  end
  else
    match Protocol.request_of_line line with
    | Error msg -> send_frame t conn (Protocol.error_frame msg)
    | Ok (Protocol.Compile req) -> handle_compile t conn req
    | Ok (Protocol.Cancel id) -> handle_cancel t conn id
    | Ok Protocol.Health -> send_frame t conn (health_json t)
    | Ok Protocol.Metrics -> send_frame t conn (metrics_json t)
    | Ok Protocol.Shutdown ->
      send_frame t conn (Protocol.Json.Obj [ ("event", Protocol.Json.Str "shutdown") ]);
      t.stopping <- true

let handle_readable t conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.co_fd chunk 0 (Bytes.length chunk) with
  | 0 -> disconnect t conn
  | got ->
    Buffer.add_subbytes conn.co_buf chunk 0 got;
    (* Split off complete lines; a partial tail stays buffered. *)
    let rec split () =
      let contents = Buffer.contents conn.co_buf in
      match String.index_opt contents '\n' with
      | None -> ()
      | Some i ->
        let line = String.sub contents 0 i in
        Buffer.clear conn.co_buf;
        Buffer.add_string conn.co_buf
          (String.sub contents (i + 1) (String.length contents - i - 1));
        handle_line t conn line;
        if not conn.co_closed then split ()
    in
    split ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    disconnect t conn

let accept_conn t listen_fd =
  match Unix.accept listen_fd with
  | fd, _ ->
    let conn =
      {
        co_id = t.next_conn;
        co_fd = fd;
        co_buf = Buffer.create 1024;
        co_jobs = Hashtbl.create 8;
        co_closed = false;
      }
    in
    t.next_conn <- t.next_conn + 1;
    Hashtbl.replace t.conns conn.co_id conn;
    logf t "conn %d accepted" conn.co_id
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let create cfg =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let rec t =
    lazy
      (let svc =
         Service.create ~workers:cfg.cfg_workers ~max_depth:cfg.cfg_max_depth
           ~run:(fun h ->
             let ctx = Service.data h in
             Driver.run_with_retry ?cache:cfg.cfg_cache
               ~cancel:(Service.cancel_flag h)
               ~trace:ctx.jc_trace ~limits:ctx.jc_limits ~retry:cfg.cfg_retry
               ctx.jc_job)
           ~cancelled:(fun h ->
             Driver.cancelled_report
               ~job:(Driver.source_name (Service.data h).jc_job.Driver.src))
           ~crashed:(fun h exn ->
             Driver.crashed_report
               ~job:(Driver.source_name (Service.data h).jc_job.Driver.src)
               exn)
           ~on_complete:(fun c -> on_complete (Lazy.force t) c)
           ()
       in
       {
         cfg;
         svc;
         epoch = Trace.now ();
         conns = Hashtbl.create 16;
         wake_r;
         wake_w;
         cq_mu = Mutex.create ();
         cq = Queue.create ();
         listen_fd = None;
         stopping = false;
         next_conn = 0;
         next_tid = 0;
         submitted = 0;
         rejected = 0;
         completed = 0;
         n_ok = 0;
         n_degraded = 0;
         n_failed = 0;
         n_cancelled = 0;
         queue_hist = Service.Histogram.create ();
         total_hist = Service.Histogram.create ();
         agg_counters = Hashtbl.create 32;
         traces = [];
         n_traces = 0;
       })
  in
  Lazy.force t

let drain_wake t =
  let chunk = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

(* Run to completion: bind, announce, serve until a shutdown frame,
   then drain the pool, deliver the tail of completions, write the
   lifetime Chrome trace, and report.  Returns the exit code. *)
let run cfg =
  let t = create cfg in
  let listen_fd, where = bind_listener cfg.cfg_listen in
  t.listen_fd <- Some listen_fd;
  (* The announce line is the startup contract: clients (and the smoke
     test) wait for it before connecting. *)
  Printf.printf "hirc serve: listening on %s (%d workers, queue depth %d)\n%!"
    where
    (Service.worker_count t.svc)
    cfg.cfg_max_depth;
  (if Service.spawn_failure_count t.svc > 0 then
     Printf.eprintf
       "hirc serve: %d worker spawn(s) failed; continuing with %d worker(s)\n%!"
       (Service.spawn_failure_count t.svc)
       (Service.worker_count t.svc));
  while not t.stopping do
    let conn_fds = Hashtbl.fold (fun _ c acc -> c.co_fd :: acc) t.conns [] in
    let read_fds = (listen_fd :: t.wake_r :: conn_fds) in
    (match Unix.select read_fds [] [] 1.0 with
    | readable, _, _ ->
      if List.mem t.wake_r readable then drain_wake t;
      drain_completions t;
      (* Snapshot: a conn may be disconnected while handling another. *)
      let by_fd = Hashtbl.fold (fun _ c acc -> (c.co_fd, c) :: acc) t.conns [] in
      List.iter
        (fun fd ->
          if fd <> listen_fd && fd <> t.wake_r then
            match List.assoc_opt fd by_fd with
            | Some conn when not conn.co_closed -> handle_readable t conn
            | _ -> ())
        readable;
      if List.mem listen_fd readable && not t.stopping then accept_conn t listen_fd
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done;
  (* Shutdown: stop accepting, drain the pool (with zero live workers
     the queue drains inline right here), deliver the tail. *)
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match cfg.cfg_listen with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ());
  Service.shutdown t.svc;
  drain_completions t;
  Hashtbl.iter (fun _ conn -> disconnect t conn) (Hashtbl.copy t.conns);
  (match cfg.cfg_trace_path with
  | Some path ->
    Trace.write_chrome_json path (List.rev t.traces);
    Printf.eprintf "wrote %s\n%!" path
  | None -> ());
  (try
     Unix.close t.wake_r;
     Unix.close t.wake_w
   with Unix.Unix_error _ -> ());
  let tot = Service.Histogram.summarize t.total_hist in
  Printf.printf
    "hirc serve: done: %d submitted, %d completed (%d ok, %d degraded, %d failed, \
     %d cancelled), %d rejected, p99 %.1f ms\n%!"
    t.submitted t.completed t.n_ok t.n_degraded t.n_failed t.n_cancelled t.rejected
    (tot.Service.Histogram.p99 *. 1000.);
  if t.completed = t.submitted then 0 else 1
