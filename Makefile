# Convenience targets around dune; `make check` is the tier-1 gate
# plus a smoke run of the compilation service over examples/ and the
# built-in kernels.

SMOKE_DESIGNS := examples/designs/transpose.hir examples/designs/stencil_1d.hir \
                 examples/designs/fifo.hir

.PHONY: all build test check faults fuzz bench-json clean

all: build

build:
	dune build @all

test:
	dune runtest

# Build + tests + an end-to-end `hirc batch` smoke over the textual
# example designs and every built-in kernel (4 workers, cached,
# traced), exercising parse -> verify -> passes -> emit for real,
# plus a bounded deterministic fuzz pass over the frontend.
check: build test
	dune exec bin/hirc.exe -- batch $(SMOKE_DESIGNS) --kernels -j 4 \
	  --cache-dir _build/.hirc-smoke-cache --trace _build/smoke.trace.json \
	  -o _build/smoke-verilog
	dune exec bin/hirc.exe -- fuzz 2000 --seed 1
	$(MAKE) faults
	dune exec bench/main.exe -- --canonicalize-scaling
	dune exec bench/main.exe -- --sim-scaling
	@echo "make check: OK"

# Seeded fault-injection sweep over the kernel suite: at a 10% rate on
# every injection point the batch must terminate within the deadline
# (timeout(1) is the hang guard), lose no jobs, and exit 0 (all jobs
# produced output, however degraded) or 2 (some failed after retries)
# — never crash, never hang.  Three seeds so the sweep actually varies
# the fault schedule.
faults: build
	@rm -rf _build/.hirc-faults-cache
	@for seed in 1 2 3; do \
	  echo "faults: seed $$seed, 10% on all points"; \
	  timeout 120 dune exec bin/hirc.exe -- batch --kernels -j 4 \
	    --cache-dir _build/.hirc-faults-cache --inject '*=0.1' \
	    --inject-seed $$seed --deadline 60 \
	    --json _build/faults-$$seed.json; \
	  code=$$?; \
	  if [ $$code -ne 0 ] && [ $$code -ne 2 ]; then \
	    echo "make faults: FAILED (seed $$seed exited $$code)"; exit 1; \
	  fi; \
	  grep -q '"total":8' _build/faults-$$seed.json || \
	    { echo "make faults: FAILED (seed $$seed lost jobs)"; exit 1; }; \
	done
	@echo "make faults: OK"

# The acceptance campaign from the never-crash contract: 10k mutated
# inputs through the frontend and 10k through the full pipeline, both
# seeded and deterministic.  Exits nonzero on any non-diagnostic crash.
fuzz: build
	dune exec bin/hirc.exe -- fuzz 10000 --seed 1
	dune exec bin/hirc.exe -- fuzz 10000 --seed 1 --full

# Machine-readable benchmark results for tracking the perf trajectory.
bench-json:
	dune exec bench/main.exe -- --table 6 --json bench-results.json

clean:
	dune clean
