(* Structural IR verification:

   - every operand is defined before use: either by an earlier op in the
     same block, by an enclosing block's arguments, or by an op that
     strictly encloses the use (SSA dominance for nested regions);
   - result/operand arrays carry types consistent with the value;
   - registered per-op dialect verifiers hold.

   Schedule verification (the paper's Section 6.1) is a separate,
   HIR-specific pass in [Hir_dialect.Verify_schedule]. *)

open Ir

(* Use-list ↔ operand consistency.  For the tree rooted at [root]:

   - every operand slot of every op in the tree appears exactly once in
     the use list of the value it currently reads;
   - every node in a tree value's use list is owned by an op inside the
     tree (no stale uses from erased or foreign ops), and reads back
     that same value.

   Rewrites that forget to link/unlink (or erase an op without its
   nested region ops) corrupt these chains silently — the worklist
   driver would then miss or resurrect work — so this runs as part of
   structural verification. *)
let check_use_lists ~engine root =
  (* Op ids in the tree, and each value in the tree (results + block args). *)
  let tree_ops : (int, op) Hashtbl.t = Hashtbl.create 256 in
  let values = ref [] in
  Walk.ops_pre root ~f:(fun op ->
      Hashtbl.replace tree_ops op.op_id op;
      Array.iter (fun v -> values := v :: !values) op.results;
      List.iter
        (fun r ->
          List.iter
            (fun b -> Array.iter (fun a -> values := a :: !values) b.b_args)
            (Region.blocks r))
        op.regions);
  let tree_values : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun v -> Hashtbl.replace tree_values v.v_id ()) !values;
  (* (owner op id, slot index) -> number of chain occurrences. *)
  let chain_slots : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun v ->
      Value.fold_uses v ~init:() ~f:(fun () owner idx ->
          if not (Hashtbl.mem tree_ops owner.op_id) then
            Diagnostic.Engine.errorf engine owner.loc
              "stale use: value %%%d has a use-list entry owned by '%s' (op %d), which is not in the IR tree"
              v.v_id owner.op_name owner.op_id
          else if not (Value.equal owner.operands.(idx) v) then
            Diagnostic.Engine.errorf engine owner.loc
              "use-list corruption: operand %d of '%s' reads %%%d but sits in the use list of %%%d"
              idx owner.op_name (Value.id owner.operands.(idx)) v.v_id
          else
            Hashtbl.replace chain_slots (owner.op_id, idx)
              (1 + Option.value ~default:0 (Hashtbl.find_opt chain_slots (owner.op_id, idx)))))
    !values;
  Hashtbl.iter
    (fun _ op ->
      Array.iteri
        (fun i v ->
          match Hashtbl.find_opt chain_slots (op.op_id, i) with
          | Some 1 -> ()
          | Some n ->
            Diagnostic.Engine.errorf engine op.loc
              "use-list corruption: operand %d of '%s' appears %d times in its value's use list"
              i op.op_name n
          | None ->
            (* Values defined outside the tree (verifying a detached
               fragment) have chains we never scanned; only slots whose
               value we did scan can be declared missing. *)
            if Hashtbl.mem tree_values v.v_id then
              Diagnostic.Engine.errorf engine op.loc
                "use-list corruption: operand %d of '%s' is missing from the use list of %%%d"
                i op.op_name v.v_id)
        op.operands)
    tree_ops

let verify_op ?(engine = Diagnostic.Engine.create ()) root =
  let visible : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let add v = Hashtbl.replace visible v.v_id () in
  let remove v = Hashtbl.remove visible v.v_id in
  let rec check_op op =
    Array.iteri
      (fun i v ->
        if not (Hashtbl.mem visible v.v_id) then
          Diagnostic.Engine.errorf engine op.loc
            "operand %d of '%s' does not dominate its use" i op.op_name)
      op.operands;
    (match Dialect.lookup_op op.op_name with
    | Some def -> def.od_verify op engine
    | None ->
      Diagnostic.Engine.errorf engine op.loc "unregistered operation '%s'"
        op.op_name);
    (* Results become visible to subsequent ops in this block, and we
       also make them visible before walking nested regions so regions
       can refer to enclosing defs textually before them?  No: MLIR
       semantics are that results are NOT visible inside the op's own
       regions; only prior defs and block args are.  We follow MLIR. *)
    List.iter
      (fun r ->
        List.iter
          (fun b ->
            let ops = Block.ops b in
            Array.iter add b.b_args;
            List.iter check_op ops;
            (* leaving scope: region-local defs go out of scope *)
            List.iter (fun o -> Array.iter remove o.results) ops;
            Array.iter remove b.b_args)
          r.blocks)
      op.regions;
    Array.iter add op.results
  in
  check_op root;
  check_use_lists ~engine root;
  engine

let verify root =
  let engine = verify_op root in
  if Diagnostic.Engine.has_errors engine then Error engine else Ok ()

let verify_exn root =
  match verify root with
  | Ok () -> ()
  | Error engine -> failwith ("IR verification failed:\n" ^ Diagnostic.Engine.to_string engine)
