lib/ir/diagnostic.ml: Format List Location
