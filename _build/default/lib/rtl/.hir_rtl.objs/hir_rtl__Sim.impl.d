lib/rtl/sim.ml: Array Bitvec Flatten Format Hashtbl Hir_verilog List Printf
