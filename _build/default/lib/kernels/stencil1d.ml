(* One-dimensional stencil with a pipelined loop (paper Listing 2).

   A window of the two most recent inputs is kept in fully-distributed
   registers; each iteration computes a weighted sum through a separate
   HIR function [stencil_opA] whose result is registered (delay 1), and
   the loop is pipelined with II = 1.

   B[i] = 3*A[i-1] + 5*A[i]  for i in 1 .. N-2.

   The two multiplies by non-power-of-two constants map to DSP blocks
   (2 x 3 DSPs = the 6 DSPs of Table 5). *)

open Hir_ir
open Hir_dialect

let name = "stencil_1d"
let n = 64
let w0 = 3
let w1 = 5

let build_op_into ?(op_name = "stencil_opA") m =
  Builder.func m ~name:op_name
    ~args:[ Builder.arg "v0" Typ.i32; Builder.arg "v1" Typ.i32 ]
    ~results:[ (Typ.i32, 1) ]
    (fun b args t ->
      match args with
      | [ v0; v1 ] ->
        let cw0 = Builder.constant b w0 in
        let cw1 = Builder.constant b w1 in
        let p0 = Builder.mult b v0 cw0 in
        let p1 = Builder.mult b v1 cw1 in
        let s = Builder.add b p0 p1 in
        let r = Builder.delay b s ~by:1 ~at:Builder.(t @>> 0) in
        Builder.return_ b [ r ]
      | _ -> assert false)

(* [lb] is the first output index: the window is primed with
   A[lb-1], A[lb] and iteration [i] in [lb .. ub-1] emits
   B[i] = w0*A[i-1] + w1*A[i] while prefetching A[i+1].  The second
   stage of the task-parallel pipeline (Listing 3) uses lb = 2 so that
   it only consumes indices its producer actually wrote. *)
let build_into ?(func_name = name) ?(lb = 1) ?(ub = n - 1) m =
  let op_func = build_op_into ~op_name:(func_name ^ "_op") m in
  Builder.func m ~name:func_name
    ~args:
      [
        Builder.arg "Ai" (Types.memref ~dims:[ n ] ~elem:Typ.i32 ~port:Types.Read ());
        Builder.arg "Bw" (Types.memref ~dims:[ n ] ~elem:Typ.i32 ~port:Types.Write ());
      ]
    (fun b args t ->
      match args with
      | [ ai; bw ] ->
        let c0 = Builder.constant b 0 in
        let c1 = Builder.constant b 1 in
        let clb_m1 = Builder.constant b (lb - 1) in
        let clb = Builder.constant b lb in
        let cub = Builder.constant b ub in
        let ports =
          Builder.alloc b ~kind:Ops.Reg ~dims:[ 2 ] ~packing:[] ~elem:Typ.i32
            ~ports:[ Types.Read; Types.Write ]
        in
        let w1r, w1w =
          match ports with [ r; w ] -> (r, w) | _ -> assert false
        in
        (* Preamble: prime the window with A[lb-1], A[lb]. *)
        let val_a = Builder.mem_read b ai [ clb_m1 ] ~at:Builder.(t @>> 0) in
        let val_a1 = Builder.delay b val_a ~by:1 ~at:Builder.(t @>> 1) in
        let val_b = Builder.mem_read b ai [ clb ] ~at:Builder.(t @>> 1) in
        Builder.mem_write b val_a1 w1w [ c0 ] ~at:Builder.(t @>> 2);
        Builder.mem_write b val_b w1w [ c1 ] ~at:Builder.(t @>> 2);
        (* Pipelined loop, II = 1. *)
        let _tf =
          Builder.for_loop b ~iv_hint:"i" ~lb:clb ~ub:cub ~step:c1
            ~at:Builder.(t @>> 3)
            (fun b ~iv:i ~ti ->
              Builder.yield b ~at:Builder.(ti @>> 1);
              let v0 = Builder.mem_read b w1r [ c0 ] ~at:Builder.(ti @>> 1) in
              let v1 = Builder.mem_read b w1r [ c1 ] ~at:Builder.(ti @>> 1) in
              let i_plus1 = Builder.add b i c1 in
              let v = Builder.mem_read b ai [ i_plus1 ] ~at:Builder.(ti @>> 0) in
              Builder.mem_write b v1 w1w [ c0 ] ~at:Builder.(ti @>> 1);
              Builder.mem_write b v w1w [ c1 ] ~at:Builder.(ti @>> 1);
              let r =
                List.hd (Builder.call b ~callee:op_func [ v0; v1 ] ~at:Builder.(ti @>> 1))
              in
              let i2 = Builder.delay b i ~by:2 ~at:Builder.(ti @>> 0) in
              Builder.mem_write b r bw [ i2 ] ~at:Builder.(ti @>> 2))
        in
        Builder.return_ b []
      | _ -> assert false)

let build () =
  let m = Builder.create_module () in
  let f = build_into m in
  (m, f)

let reference input =
  Array.init n (fun i ->
      if i >= 1 && i <= n - 2 then
        Bitvec.add
          (Bitvec.mul input.(i - 1) (Util.bv32 w0))
          (Bitvec.mul input.(i) (Util.bv32 w1))
      else Bitvec.zero 32)

(* Output indices actually produced by the design. *)
let valid_range = (1, n - 2)

let make_input ~seed = Util.test_data ~seed ~n ~width:32

let check_interp ?(seed = 2) () =
  let m, f = build () in
  let input = make_input ~seed in
  let result, tensors =
    Interp.run ~module_op:m ~func:f [ Interp.Tensor input; Interp.Out_tensor ]
  in
  let out = Interp.tensor_snapshot (tensors 1) ~cycle:max_int in
  let expected = reference input in
  let lo, hi = valid_range in
  let ok = ref true in
  for i = lo to hi do
    match out.(i) with
    | Some got when Bitvec.equal got expected.(i) -> ()
    | _ -> ok := false
  done;
  if !ok then Ok result else Error "stencil output mismatch"
