examples/systolic_gemm.ml: Array Bitvec Format Hir_codegen Hir_dialect Hir_kernels Hir_resources Hir_rtl Interp Ops Printf
