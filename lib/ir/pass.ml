(* Passes and the pass manager.

   A pass transforms the IR rooted at an op (usually a module or a
   function) and reports whether it changed anything.  The manager runs
   a pipeline, optionally re-verifying between passes, and records
   wall-clock statistics per pass — the infrastructure behind the
   compile-time evaluation in Table 6.

   Instrumentation: the manager emits a [Pass_begin]/[Pass_end] event
   around every pass.  The per-pass stats list handed back in [result]
   is built from the very same events, so an external tracer (see
   lib/driver) and [pp_stats] observe identical timings. *)

type t = {
  name : string;
  description : string;
  run : Ir.op -> Diagnostic.Engine.t -> bool;
}

let make ~name ~description run = { name; description; run }

type stat = { pass_name : string; seconds : float; changed : bool }

type event =
  | Pass_begin of { pass_name : string; index : int }
  | Pass_end of { pass_name : string; index : int; seconds : float; changed : bool }

type result = {
  stats : stat list;
  engine : Diagnostic.Engine.t;
  succeeded : bool;
}

module Manager = struct
  type manager = {
    passes : t list;
    verify_each : bool;
    instrument : event -> unit;
  }

  let create ?(verify_each = false) ?(instrument = fun _ -> ()) passes =
    { passes; verify_each; instrument }

  let run mgr root =
    let engine = Diagnostic.Engine.create () in
    (* Stats are collected by listening to the same event stream the
       external instrumentation callback sees. *)
    let collected = ref [] in
    let emit_event ev =
      (match ev with
      | Pass_end { pass_name; seconds; changed; _ } ->
        collected := { pass_name; seconds; changed } :: !collected
      | Pass_begin _ -> ());
      mgr.instrument ev
    in
    let finish succeeded =
      { stats = List.rev !collected; engine; succeeded }
    in
    let rec go index = function
      | [] -> finish true
      | pass :: rest ->
        emit_event (Pass_begin { pass_name = pass.name; index });
        let t0 = Unix.gettimeofday () in
        let changed = pass.run root engine in
        let seconds = Unix.gettimeofday () -. t0 in
        emit_event (Pass_end { pass_name = pass.name; index; seconds; changed });
        if Diagnostic.Engine.has_errors engine then finish false
        else if mgr.verify_each then begin
          match Verify.verify root with
          | Ok () -> go (index + 1) rest
          | Error verify_engine ->
            Diagnostic.Engine.errorf engine (Ir.Op.loc root)
              "IR verification failed after pass '%s':\n%s" pass.name
              (Diagnostic.Engine.to_string verify_engine);
            finish false
        end
        else go (index + 1) rest
    in
    go 0 mgr.passes

  let pp_stats fmt result =
    List.iter
      (fun s ->
        Format.fprintf fmt "%-28s %8.3f ms %s@\n" s.pass_name (s.seconds *. 1000.)
          (if s.changed then "(changed)" else ""))
      result.stats
end
