lib/hir/unroll.ml: Array Attribute Hashtbl Hir_ir Ir List Ops Pass Printf Types
