(* hirc — the HIR compiler driver.

     hirc compile design.hir [-o out.v] [--top f] [--no-opt]
         parse (generic textual form), verify, optimize, emit Verilog
     hirc verify design.hir
         run the structural and schedule verifiers, print diagnostics
     hirc print design.hir
         parse and re-print (round-trip check)
     hirc kernels
         list the built-in benchmark kernels
     hirc demo <kernel> [-o out.v] [--no-opt] [--stats]
         compile a built-in kernel and report resources *)

open Hir_ir
open Hir_dialect
open Cmdliner

let () = Ops.register ()

let load_module path =
  try Ok (Parser.parse_file path) with
  | Parser.Parse_error (loc, msg) ->
    Error (Printf.sprintf "%s: parse error: %s" (Location.to_string loc) msg)
  | Lexer.Lex_error (loc, msg) ->
    Error (Printf.sprintf "%s: lex error: %s" (Location.to_string loc) msg)
  | Sys_error e -> Error e

let run_verifiers module_op =
  let engine = Diagnostic.Engine.create () in
  (match Verify.verify module_op with
  | Ok () -> ()
  | Error e -> List.iter (Diagnostic.Engine.emit engine) (Diagnostic.Engine.to_list e));
  if not (Diagnostic.Engine.has_errors engine) then
    Verify_schedule.verify_module engine module_op;
  engine

let output_text out text =
  match out with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.eprintf "wrote %s (%d bytes)\n" path (String.length text)

let pick_top module_op top =
  match (top, Ops.module_funcs module_op) with
  | Some name, _ -> (
    match Ops.lookup_func module_op name with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "no function @%s in the module" name))
  | None, [] -> Error "module contains no functions"
  | None, funcs -> Ok (List.nth funcs (List.length funcs - 1))

let compile_module ~optimize ~top ~out module_op =
  let engine = run_verifiers module_op in
  if Diagnostic.Engine.has_errors engine then begin
    prerr_endline (Diagnostic.Engine.to_string engine);
    1
  end
  else
    match pick_top module_op top with
    | Error e ->
      prerr_endline e;
      1
    | Ok top_func ->
      let emitted = Hir_codegen.Emit.compile ~optimize ~module_op ~top:top_func () in
      output_text out (Hir_verilog.Pretty.design_to_string emitted.Hir_codegen.Emit.design);
      0

(* ----------------------------- commands --------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input .hir file")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output file")

let top_arg =
  Arg.(value & opt (some string) None & info [ "top" ] ~docv:"FUNC" ~doc:"Top-level function")

let no_opt_arg =
  Arg.(value & flag & info [ "no-opt" ] ~doc:"Skip the optimization pipeline")

let compile_cmd =
  let run file out top no_opt =
    match load_module file with
    | Error e ->
      prerr_endline e;
      1
    | Ok m -> compile_module ~optimize:(not no_opt) ~top ~out m
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile textual HIR to Verilog")
    Term.(const run $ file_arg $ out_arg $ top_arg $ no_opt_arg)

let verify_cmd =
  let run file =
    match load_module file with
    | Error e ->
      prerr_endline e;
      1
    | Ok m ->
      let engine = run_verifiers m in
      if Diagnostic.Engine.has_errors engine then begin
        prerr_endline (Diagnostic.Engine.to_string engine);
        1
      end
      else begin
        Printf.printf "%s: all functions verify\n" file;
        0
      end
  in
  Cmd.v (Cmd.info "verify" ~doc:"Verify a textual HIR design") Term.(const run $ file_arg)

let print_cmd =
  let pretty_arg =
    Arg.(value & flag & info [ "pretty" ] ~doc:"Use the paper-style custom syntax")
  in
  let run file out pretty =
    match load_module file with
    | Error e ->
      prerr_endline e;
      1
    | Ok m ->
      if pretty then output_text out (Pretty.module_to_string m)
      else output_text out (Printer.op_to_string m ^ "\n");
      0
  in
  Cmd.v
    (Cmd.info "print" ~doc:"Parse and re-print (round-trip, or --pretty)")
    Term.(const run $ file_arg $ out_arg $ pretty_arg)

let kernels_cmd =
  let run () =
    List.iter
      (fun k ->
        Printf.printf "%-14s %s\n" k.Hir_kernels.Kernels.name
          k.Hir_kernels.Kernels.description)
      Hir_kernels.Kernels.all;
    0
  in
  Cmd.v
    (Cmd.info "kernels" ~doc:"List the built-in benchmark kernels")
    Term.(const run $ const ())

let demo_cmd =
  let kernel_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel name")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print resource estimates")
  in
  let run name out no_opt stats =
    match Hir_kernels.Kernels.find name with
    | None ->
      Printf.eprintf "unknown kernel %s (try `hirc kernels`)\n" name;
      1
    | Some k ->
      let m, f = k.Hir_kernels.Kernels.build () in
      let emitted =
        Hir_codegen.Emit.compile ~optimize:(not no_opt) ~module_op:m ~top:f ()
      in
      if stats then begin
        let u = Hir_resources.Model.design_usage emitted.Hir_codegen.Emit.design in
        Printf.eprintf "%s: %s\n" name
          (Format.asprintf "%a" Hir_resources.Model.pp u)
      end;
      output_text out (Hir_verilog.Pretty.design_to_string emitted.Hir_codegen.Emit.design);
      0
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Compile a built-in kernel")
    Term.(const run $ kernel_arg $ out_arg $ no_opt_arg $ stats_arg)

let () =
  let doc = "HIR: an MLIR-style IR for hardware accelerator description" in
  let info = Cmd.info "hirc" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ compile_cmd; verify_cmd; print_cmd; kernels_cmd; demo_cmd ]))
