lib/ir/pass.ml: Diagnostic Format Ir List Unix Verify
