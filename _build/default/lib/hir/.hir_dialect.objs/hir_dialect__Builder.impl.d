lib/hir/builder.ml: Attribute Hir_ir Ir List Location Ops Printf Typ Types
