lib/resources/model.ml: Format Hashtbl Hir_verilog List
