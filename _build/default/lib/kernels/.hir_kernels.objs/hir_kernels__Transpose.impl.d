lib/kernels/transpose.ml: Array Bitvec Builder Hir_dialect Hir_ir Interp Typ Types Util
