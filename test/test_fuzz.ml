(* Bounded, deterministic fuzzing under `dune runtest`: a small slice
   of the `hirc fuzz` campaign runs on every test invocation, so a
   regression in the never-crash contract is caught without anyone
   remembering to run the fuzzer by hand. *)

open Hir_fuzz

let corpus = lazy (Corpus.default ())

let crash_summary stats =
  String.concat "\n"
    (List.map
       (fun c ->
         Printf.sprintf "iteration %d: %s\n--- input ---\n%s" c.Fuzz.crash_iteration
           c.Fuzz.crash_exn c.Fuzz.crash_input)
       stats.Fuzz.crashes)

(* The PRNG is a fixed algorithm (splitmix64), not OCaml's [Random], so
   the same seed must reproduce the same campaign on any OCaml
   version. *)
let test_deterministic () =
  let run () = Fuzz.run ~mode:Fuzz.Frontend ~seed:7 ~iterations:200 (Lazy.force corpus) in
  let a = run () and b = run () in
  Alcotest.(check string)
    "same seed, same stats"
    (Fuzz.stats_to_string a) (Fuzz.stats_to_string b);
  (* Distinct seeds should not trace out an identical campaign. *)
  let c = Fuzz.run ~mode:Fuzz.Frontend ~seed:8 ~iterations:200 (Lazy.force corpus) in
  if Fuzz.stats_to_string a = Fuzz.stats_to_string c then
    Alcotest.fail "seeds 7 and 8 produced identical stats"

let test_frontend_no_crash () =
  let stats =
    Fuzz.run ~mode:Fuzz.Frontend ~seed:1 ~iterations:1500 (Lazy.force corpus)
  in
  Alcotest.(check int) "iterations" 1500 stats.Fuzz.iterations;
  if stats.Fuzz.crashes <> [] then
    Alcotest.failf "frontend fuzzing crashed:\n%s" (crash_summary stats)

let test_full_no_crash () =
  let stats = Fuzz.run ~mode:Fuzz.Full ~seed:1 ~iterations:300 (Lazy.force corpus) in
  if stats.Fuzz.crashes <> [] then
    Alcotest.failf "full-pipeline fuzzing crashed:\n%s" (crash_summary stats)

(* Every corpus seed is a valid module: the oracle must accept it
   unmutated, otherwise the fuzzer starts from rejected inputs and
   never exercises the deeper stages. *)
let test_corpus_seeds_valid () =
  List.iteri
    (fun i text ->
      match Fuzz.run_one ~mode:Fuzz.Frontend text with
      | Ok Fuzz.Compiled_ok -> ()
      | Ok verdict ->
        Alcotest.failf "corpus seed %d rejected: %s" i (Fuzz.verdict_to_string verdict)
      | Error exn_str -> Alcotest.failf "corpus seed %d crashed: %s" i exn_str)
    (Lazy.force corpus)

(* The verdict distribution must show the campaign reaching past the
   lexer: a fuzzer whose every input dies at the first stage proves
   nothing about the rest of the frontend. *)
let test_reaches_all_stages () =
  let stats =
    Fuzz.run ~mode:Fuzz.Frontend ~seed:3 ~iterations:1500 (Lazy.force corpus)
  in
  Alcotest.(check bool) "some parse rejects" true (stats.Fuzz.parse_rejects > 0);
  Alcotest.(check bool) "some verify rejects" true (stats.Fuzz.verify_rejects > 0);
  Alcotest.(check bool) "some inputs survive" true (stats.Fuzz.compiled_ok > 0)

let () =
  Alcotest.run "fuzz"
    [
      ( "fuzz",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "frontend never crashes" `Quick test_frontend_no_crash;
          Alcotest.test_case "full pipeline never crashes" `Quick test_full_no_crash;
          Alcotest.test_case "corpus seeds are valid" `Quick test_corpus_seeds_valid;
          Alcotest.test_case "campaign reaches all stages" `Quick test_reaches_all_stages;
        ] );
    ]
