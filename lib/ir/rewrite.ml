(* Worklist-driven rewriting, modelled on MLIR's PatternRewriter and
   GreedyPatternRewriteDriver (Lattner et al., CGO 2021).

   A [Rewriter.t] is the mutation capability handed to rewrite patterns
   and sweeps: every change to the IR goes through it, so the driver
   can (a) re-enqueue exactly the ops whose inputs changed instead of
   re-scanning the module, (b) count pattern applications for the pass
   statistics and Chrome traces, and (c) optionally keep a full
   mutation log for debugging.

   The greedy driver seeds a worklist from the region tree and drains
   it: per op it tries trivial-DCE, then the op's registered fold hook
   (see [Dialect.register_op ?fold]), then the rewrite patterns
   registered against the op name, re-feeding the worklist from the
   users of changed values.  Convergence is detected by the worklist
   draining; the round backstop exists only to catch non-converging
   pattern sets (the class of bug PR 2's x*0 loop was). *)

(* ------------------------------------------------------------------ *)
(* Rewriter                                                            *)

type mutation =
  | Op_created of Ir.op
  | Op_erased of Ir.op
  | Op_modified of Ir.op
  | Value_replaced of { old_v : Ir.value; new_v : Ir.value }
  | Type_changed of Ir.value

type t = {
  rw_root : Ir.op;
  mutable rw_changed : bool;
  rw_counters : (string, int) Hashtbl.t;
  rw_log : mutation list ref option;  (* full log only when requested *)
  mutable rw_worklist : Ir.op list;  (* LIFO *)
  rw_on_list : (int, unit) Hashtbl.t;  (* op ids currently enqueued *)
}

module Rewriter = struct
  type nonrec t = t

  let create ?(log = false) ~root () =
    {
      rw_root = root;
      rw_changed = false;
      rw_counters = Hashtbl.create 16;
      rw_log = (if log then Some (ref []) else None);
      rw_worklist = [];
      rw_on_list = Hashtbl.create 64;
    }

  let root rw = rw.rw_root
  let changed rw = rw.rw_changed

  let counters rw =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) rw.rw_counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let mutations rw = match rw.rw_log with Some l -> List.rev !l | None -> []

  let bump ?(n = 1) rw name =
    Hashtbl.replace rw.rw_counters name
      (n + Option.value ~default:0 (Hashtbl.find_opt rw.rw_counters name))

  let record rw m =
    rw.rw_changed <- true;
    match rw.rw_log with Some l -> l := m :: !l | None -> ()

  (* -- worklist ---------------------------------------------------- *)

  let enqueue rw op =
    if not (Hashtbl.mem rw.rw_on_list op.Ir.op_id) then begin
      Hashtbl.replace rw.rw_on_list op.Ir.op_id ();
      rw.rw_worklist <- op :: rw.rw_worklist
    end

  let enqueue_def rw v =
    match Ir.Value.defining_op v with Some op -> enqueue rw op | None -> ()

  let enqueue_users_of rw v = List.iter (enqueue rw) (Ir.Value.users v)

  let enqueue_result_users rw op =
    List.iter (enqueue_users_of rw) (Ir.Op.results op)

  let pop rw =
    match rw.rw_worklist with
    | [] -> None
    | op :: rest ->
      rw.rw_worklist <- rest;
      Hashtbl.remove rw.rw_on_list op.Ir.op_id;
      Some op

  (* -- mutations --------------------------------------------------- *)

  let insert_op_before rw ~anchor op =
    (match Ir.Op.parent anchor with
    | Some b -> Ir.Block.insert_before b ~anchor op
    | None -> invalid_arg "Rewriter.insert_op_before: detached anchor");
    record rw (Op_created op);
    enqueue rw op

  let insert_op_after rw ~anchor op =
    (match Ir.Op.parent anchor with
    | Some b -> Ir.Block.insert_after b ~anchor op
    | None -> invalid_arg "Rewriter.insert_op_after: detached anchor");
    record rw (Op_created op);
    enqueue rw op

  let append_op rw block op =
    Ir.Block.append block op;
    record rw (Op_created op);
    enqueue rw op

  (* Erase [op] (and its regions).  The defining ops of its operands
     may have just lost their last use, so they go back on the list. *)
  let erase_op rw op =
    let feeders = Ir.Op.operands op in
    Ir.erase_op op;
    record rw (Op_erased op);
    List.iter (enqueue_def rw) feeders

  (* Redirect every use of [old_v] to [new_v] and re-enqueue the moved
     users; [old_v]'s defining op likely became dead, so it is
     re-enqueued too. *)
  let replace_value rw old_v new_v =
    if not (Ir.Value.equal old_v new_v) then begin
      let moved = Ir.Value.users old_v in
      Ir.Value.replace_all_uses old_v new_v;
      record rw (Value_replaced { old_v; new_v });
      List.iter (enqueue rw) moved;
      enqueue_def rw old_v
    end

  let replace_op_with_value rw op new_v =
    assert (Ir.Op.num_results op = 1);
    replace_value rw (Ir.Op.result op 0) new_v;
    erase_op rw op

  let replace_op_with_op rw op new_op =
    assert (Ir.Op.num_results op = Ir.Op.num_results new_op);
    (match Ir.Op.parent op with
    | Some b -> Ir.Block.insert_before b ~anchor:op new_op
    | None -> invalid_arg "Rewriter.replace_op_with_op: detached op");
    record rw (Op_created new_op);
    enqueue rw new_op;
    List.iteri
      (fun i r -> replace_value rw r (Ir.Op.result new_op i))
      (Ir.Op.results op);
    erase_op rw op

  let set_operand rw op i v =
    let old = Ir.Op.operand op i in
    if not (Ir.Value.equal old v) then begin
      Ir.Op.set_operand op i v;
      record rw (Op_modified op);
      enqueue rw op;
      enqueue_def rw old
    end

  let set_attr rw op key value =
    Ir.Op.set_attr op key value;
    record rw (Op_modified op);
    enqueue rw op;
    enqueue_result_users rw op

  (* For in-place changes made directly on the op (rare; prefer the
     typed mutators above): report them so dependents are revisited. *)
  let notify_op_modified rw op =
    record rw (Op_modified op);
    enqueue rw op;
    enqueue_result_users rw op

  let set_value_type rw v ty =
    if not (Typ.equal (Ir.Value.typ v) ty) then begin
      Ir.Value.set_type v ty;
      record rw (Type_changed v);
      enqueue_users_of rw v;
      enqueue_def rw v
    end
end

(* ------------------------------------------------------------------ *)
(* Pattern registry                                                    *)

(* A rewrite pattern matched against one op name.  [p_apply] performs
   the rewrite through the rewriter and reports whether it fired. *)
type pattern = { p_name : string; p_apply : t -> Ir.op -> bool }

let pattern_registry : (string, pattern list ref) Hashtbl.t = Hashtbl.create 64

(* Patterns apply in registration order (first registered, first
   tried), matching MLIR's benefit-ordered greedy application for the
   single-benefit case. *)
let register_pattern ~op ~name apply =
  let cell =
    match Hashtbl.find_opt pattern_registry op with
    | Some cell -> cell
    | None ->
      let cell = ref [] in
      Hashtbl.add pattern_registry op cell;
      cell
  in
  if not (List.exists (fun p -> p.p_name = name) !cell) then
    cell := !cell @ [ { p_name = name; p_apply = apply } ]

let patterns_for op_name =
  match Hashtbl.find_opt pattern_registry op_name with
  | Some cell -> !cell
  | None -> []

(* ------------------------------------------------------------------ *)
(* Greedy driver                                                       *)

type config = {
  use_folds : bool;  (* apply Dialect fold hooks *)
  patterns : pattern list option;  (* None: use the registry *)
  is_trivially_dead : (Ir.op -> bool) option;  (* None: no DCE *)
  sweeps : (t -> bool) list;
      (* whole-module sweeps (e.g. scoped CSE) run after each drain;
         anything they change re-feeds the worklist *)
  max_rounds : int;  (* backstop only — never the convergence criterion *)
}

let default_config =
  {
    use_folds = true;
    patterns = None;
    is_trivially_dead = None;
    sweeps = [];
    max_rounds = 64;
  }

type driver_stats = {
  ds_changed : bool;
  ds_rounds : int;  (* drain+sweep cycles until convergence *)
  ds_processed : int;  (* ops popped and examined *)
  ds_applications : (string * int) list;  (* per-pattern/fold/dce counts *)
  ds_backstop : bool;  (* true iff the round backstop fired: a bug *)
}

(* Replace a single-result op via its fold outcome.  [Fold_value]
   forwards an existing value — only when types agree, since uses keep
   their static type.  [Fold_attr] materializes a dialect constant
   before the op and replaces it unconditionally (the materializer
   decides the constant's type, mirroring how constant folding always
   produced constant-typed values). *)
let apply_fold rw op fold =
  if Ir.Op.num_results op <> 1 then false
  else
    match fold op with
    | None -> false
    | Some (Dialect.Fold_value v) ->
      if Typ.equal (Ir.Value.typ (Ir.Op.result op 0)) (Ir.Value.typ v) then begin
        Rewriter.replace_op_with_value rw op v;
        true
      end
      else false
    | Some (Dialect.Fold_attr attr) -> (
      let dialect = Dialect.dialect_of_op_name (Ir.Op.name op) in
      let result = Ir.Op.result op 0 in
      match
        Dialect.materialize_constant ~dialect attr (Ir.Value.typ result) (Ir.Op.loc op)
      with
      | None -> false
      | Some const_op ->
        Rewriter.insert_op_before rw ~anchor:op const_op;
        Rewriter.replace_op_with_value rw op (Ir.Op.result const_op 0);
        true)

let run_greedy ?(config = default_config) ?rewriter root =
  let rw = match rewriter with Some rw -> rw | None -> Rewriter.create ~root () in
  (* With an explicit pattern list, every pattern is offered every op
     (its [p_apply] does its own matching); otherwise consult the
     registry by op name. *)
  let patterns_for_op op_name =
    match config.patterns with None -> patterns_for op_name | Some ps -> ps
  in
  (* Seed: every op nested under the root, enqueued so that pop order
     is roughly program order (defs before uses — folds cascade forward
     in one drain). *)
  let seed () =
    let acc = ref [] in
    List.iter
      (fun r ->
        List.iter
          (fun b -> List.iter (fun o -> Ir.Walk.ops_pre o ~f:(fun o' -> acc := o' :: !acc)) (Ir.Block.ops b))
          (Ir.Region.blocks r))
      (Ir.Op.regions root);
    List.iter (Rewriter.enqueue rw) !acc
  in
  seed ();
  let seed_count = List.length rw.rw_worklist in
  (* Total-application backstop: generous, proportional to module size.
     Only a diverging pattern set can reach it. *)
  let max_applications = config.max_rounds * (seed_count + 16) in
  let processed = ref 0 in
  let applications = ref 0 in
  let backstop = ref false in
  let trivially_dead op =
    match config.is_trivially_dead with
    | None -> false
    | Some pred ->
      Ir.Op.num_results op > 0
      && pred op
      && List.for_all (fun r -> not (Ir.Value.has_uses r)) (Ir.Op.results op)
  in
  let process op =
    incr processed;
    if trivially_dead op then begin
      Rewriter.bump rw "dce";
      incr applications;
      Rewriter.erase_op rw op
    end
    else begin
      let folded =
        config.use_folds
        && (match Dialect.op_fold (Ir.Op.name op) with
           | Some fold when apply_fold rw op fold ->
             Rewriter.bump rw ("fold(" ^ Ir.Op.name op ^ ")");
             incr applications;
             true
           | _ -> false)
      in
      if not folded then
        ignore
          (List.exists
             (fun p ->
               if p.p_apply rw op then begin
                 Rewriter.bump rw p.p_name;
                 incr applications;
                 true
               end
               else false)
             (patterns_for_op (Ir.Op.name op)))
    end
  in
  let rec drain () =
    if !applications > max_applications then backstop := true
    else
      match Rewriter.pop rw with
      | None -> ()
      | Some op ->
        (* Ops erased while enqueued are detached; skip them. *)
        (match Ir.Op.parent op with None -> () | Some _ -> process op);
        drain ()
  in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && not !backstop do
    incr rounds;
    if !rounds > config.max_rounds then begin
      backstop := true;
      continue_ := false
    end
    else begin
      drain ();
      if not !backstop then begin
        let sweeps_changed =
          List.fold_left (fun acc sweep -> sweep rw || acc) false config.sweeps
        in
        (* Converged when the sweeps were quiet and produced no new
           worklist entries. *)
        let worklist_empty =
          match rw.rw_worklist with [] -> true | _ :: _ -> false
        in
        if (not sweeps_changed) && worklist_empty then continue_ := false
      end
    end
  done;
  if !backstop then Rewriter.bump rw "backstop";
  {
    ds_changed = rw.rw_changed;
    ds_rounds = !rounds;
    ds_processed = !processed;
    ds_applications = Rewriter.counters rw;
    ds_backstop = !backstop;
  }
