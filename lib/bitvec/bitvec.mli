(** Arbitrary-width two's-complement bit vectors.

    This is the value domain shared by the HIR interpreter and the RTL
    simulator.  A value is a bit string of a fixed, explicit [width]
    (>= 1); arithmetic wraps modulo [2^width], as hardware does.

    Values are immutable.  The representation keeps all bits above
    [width] cleared, so structural equality coincides with value
    equality. *)

type t

(** {1 Construction} *)

val width : t -> int

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w]. *)

val one : int -> t
(** [one w] is the value 1 at width [w]. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w] (i.e. -1 signed). *)

val of_int : width:int -> int -> t
(** [of_int ~width n] truncates the two's-complement representation of
    [n] to [width] bits.  Negative [n] sign-extends first. *)

val of_int64 : width:int -> int64 -> t

val of_bool : bool -> t
(** Width-1 vector. *)

val of_bin_string : string -> t
(** [of_bin_string "0101"] has width 4, value 5.  Underscores are
    ignored.  Raises [Invalid_argument] on empty or non-binary input. *)

val of_hex_string : width:int -> string -> t

(** {1 Observation} *)

val to_int : t -> int
(** Unsigned value.  Raises [Failure] if it does not fit in a
    non-negative OCaml [int]. *)

val to_signed_int : t -> int
(** Two's-complement signed value.  Raises [Failure] if out of range. *)

val to_int64_trunc : t -> int64
(** Low 64 bits, unsigned beyond width. *)

val to_int_trunc : t -> int
(** Low 63 bits as a native [int] (modulo [2^63]); never raises.  For
    [width v <= 63] this is exact: it is the masked-int representation
    used by the RTL simulator's unboxed fast path, where bit 62 lands
    on the OCaml sign bit (so width-63 values may read as negative). *)

val to_int_opt : t -> int option
(** [Some] of the unsigned value when it fits a non-negative OCaml
    [int]; [None] otherwise.  Non-raising [to_int]. *)

val bit : t -> int -> bool
(** [bit v i] is bit [i] (0 = LSB).  Out-of-range indices read as 0. *)

val msb : t -> bool

val is_zero : t -> bool

val popcount : t -> int

val min_width : t -> int
(** Bits needed to represent the unsigned value (>= 1). *)

val equal : t -> t -> bool
(** Value-and-width equality. *)

val compare : t -> t -> int
(** Unsigned comparison; widths may differ. *)

val compare_signed : t -> t -> int
(** Signed comparison at each operand's own width. *)

val hash : t -> int

(** {1 Arithmetic — operands must have equal widths} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Result width = operand width (low half of the full product). *)

val mul_full : t -> t -> t
(** Result width = sum of operand widths (exact product). *)

val udiv : t -> t -> t
(** Unsigned division.  Division by zero yields all-ones (hardware
    convention; also what Verilog 'x would synthesize to in our model). *)

val urem : t -> t -> t
(** Unsigned remainder.  Remainder by zero yields the dividend. *)

(** {1 Bitwise — operands must have equal widths} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t

(** {1 Width changes and structure} *)

val extract : hi:int -> lo:int -> t -> t
(** Inclusive bit range; requires [0 <= lo <= hi < width]. *)

val concat : t -> t -> t
(** [concat hi lo]: [hi] occupies the high bits. *)

val zero_extend : width:int -> t -> t
val sign_extend : width:int -> t -> t

val truncate : width:int -> t -> t
(** Keep the low [width] bits; requires [width <= width v]. *)

val resize : width:int -> t -> t
(** Zero-extend or truncate as needed. *)

val resize_signed : width:int -> t -> t
(** Sign-extend or truncate as needed. *)

(** {1 Printing} *)

val to_bin_string : t -> string
val to_hex_string : t -> string
val to_string : t -> string
(** Decimal (unsigned). *)

val to_signed_string : t -> string

val pp : Format.formatter -> t -> unit
(** Verilog-style, e.g. [8'd42]. *)
