(* Parameterized output-stationary systolic array: an N×N grid of MAC
   processing elements computing C = A·B with true neighbor-to-neighbor
   dataflow, the canonical generator workload for the hierarchical
   emitter (one PE definition, N² instantiations).

   Unlike [Gemm] (whose PEs each own a private reduction loop over a
   shared buffer), this is the textbook systolic schedule: A values
   enter row i skewed by i cycles and ride rightward through one-cycle
   delay hops; B values enter column j skewed by j cycles and ride
   downward; PE (i,j) sees A[i][k] and B[k][j] meet at cycle k+i+j+1
   and multiply-accumulates into its own output-stationary register.
   The skew is pure schedule (constant offsets on the reads), and the
   hops are explicit hir.delay ops threaded through the OCaml
   recursion that stamps out the grid — there is no unroll_for here;
   [Builder.group] marks each PE's cone as one emission group so the
   code generator outlines the grid into a single shared module
   definition.

   The drain is deliberately serialized through the single output
   port: N² writers on one memory port is exactly the shape the
   emitter's arbiter-chain lowering shares across sites.

   [mac_stages] pipelines the multiplier by registering the product
   for that many extra cycles before the accumulate — the
   "configurable MAC PE" knob; every PE shifts its accumulate by the
   same constant, so the schedule stays exact for any value. *)

open Hir_ir
open Hir_dialect

let name = "systolic"
let n = 8
let mac_stages = 1

let build_into ?(n = n) ?(mac_stages = mac_stages) m =
  Builder.func m ~name
    ~args:
      [
        (* A banked by row: row feeders read their own bank. *)
        Builder.arg "Ai"
          (Types.memref ~packing:(Some [ 1 ]) ~dims:[ n; n ] ~elem:Typ.i32
             ~port:Types.Read ());
        (* B indexed [k][j], banked by column. *)
        Builder.arg "Bi"
          (Types.memref ~packing:(Some [ 0 ]) ~dims:[ n; n ] ~elem:Typ.i32
             ~port:Types.Read ());
        Builder.arg "Co" (Types.memref ~dims:[ n; n ] ~elem:Typ.i32 ~port:Types.Write ());
      ]
    (fun b args t ->
      match args with
      | [ a_in; b_in; c_out ] ->
        let c0 = Builder.constant b 0 in
        let c1 = Builder.constant b 1 in
        let cn = Builder.constant b n in
        let idx = Array.init n (fun i -> Builder.constant b i) in
        (* One output-stationary accumulator register per PE. *)
        let acc_ports =
          Builder.alloc b ~kind:Ops.Reg ~dims:[ n; n ] ~packing:[] ~elem:Typ.i32
            ~ports:[ Types.Read; Types.Write ]
        in
        let acc_r, acc_w =
          match acc_ports with [ r; w ] -> (r, w) | _ -> assert false
        in
        (* Clear every accumulator in parallel (all banks distinct). *)
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            Builder.mem_write b c0 acc_w [ idx.(i); idx.(j) ] ~at:Builder.(t @>> 0)
          done
        done;
        (* The wavefront: one k per cycle.  Within iteration k, row
           feeder i issues its read at offset i (the skew), so the
           address register must hold k that many cycles later —
           hence the per-row/column delayed copies of the iv. *)
        let tf =
          Builder.for_loop b ~iv_hint:"k" ~lb:c0 ~ub:cn ~step:c1
            ~at:Builder.(t @>> 1)
            (fun b ~iv:k ~ti:tk ->
              Builder.yield b ~at:Builder.(tk @>> 1);
              let skewed =
                Array.init n (fun i ->
                    if i = 0 then k
                    else Builder.delay b k ~by:i ~at:Builder.(tk @>> 0))
              in
              (* Row/column feeders: a_feed.(i) valid at tk+i+1,
                 b_feed.(j) valid at tk+j+1 (read latency 1). *)
              let a_feed =
                Array.init n (fun i ->
                    Builder.mem_read b a_in
                      [ idx.(i); skewed.(i) ]
                      ~at:Builder.(tk @>> i))
              in
              let b_feed =
                Array.init n (fun j ->
                    Builder.mem_read b b_in
                      [ skewed.(j); idx.(j) ]
                      ~at:Builder.(tk @>> j))
              in
              (* The grid, column-major recursion threading the hop
                 values: PE (i,j) consumes its operands at tk+i+j+1. *)
              let a_pass = Array.copy a_feed in
              for j = 0 to n - 1 do
                let b_col = ref b_feed.(j) in
                for i = 0 to n - 1 do
                  let av = a_pass.(i) and bv = !b_col in
                  Builder.group b (fun () ->
                      let meet = i + j + 1 in
                      (* Pass operands to the right/down neighbors. *)
                      if j < n - 1 then
                        a_pass.(i) <-
                          Builder.delay b av ~by:1 ~at:Builder.(tk @>> meet);
                      if i < n - 1 then
                        b_col := Builder.delay b bv ~by:1 ~at:Builder.(tk @>> meet);
                      (* The MAC: product registered for [mac_stages]
                         cycles, then accumulated in place. *)
                      let p = Builder.mult b av bv in
                      let pd =
                        if mac_stages = 0 then p
                        else Builder.delay b p ~by:mac_stages ~at:Builder.(tk @>> meet)
                      in
                      let commit = meet + mac_stages in
                      let acc =
                        Builder.mem_read b acc_r
                          [ idx.(i); idx.(j) ]
                          ~at:Builder.(tk @>> commit)
                      in
                      let s = Builder.add b pd acc in
                      Builder.mem_write b s acc_w
                        [ idx.(i); idx.(j) ]
                        ~at:Builder.(tk @>> commit))
                done
              done)
        in
        (* Serialized drain through the single Co port, one element per
           cycle, after the last accumulate has committed (the final
           wavefront k=N-1 commits at t+N+2(N-1)+1+mac_stages; the loop
           completes at t+N+1, so 2N+mac_stages clears the corner PE). *)
        let ds = (2 * n) + mac_stages in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            let off = ds + (i * n) + j in
            let v =
              Builder.mem_read b acc_r [ idx.(i); idx.(j) ] ~at:Builder.(tf @>> off)
            in
            Builder.mem_write b v c_out [ idx.(i); idx.(j) ] ~at:Builder.(tf @>> off)
          done
        done;
        Builder.return_ b []
      | _ -> assert false)

let build ?n ?mac_stages () =
  let m = Builder.create_module () in
  let f = build_into ?n ?mac_stages m in
  (m, f)

let reference ?(n = n) a bm =
  Array.init (n * n) (fun i ->
      let r = i / n and c = i mod n in
      let acc = ref (Bitvec.zero 32) in
      for k = 0 to n - 1 do
        acc := Bitvec.add !acc (Bitvec.mul a.((r * n) + k) bm.((k * n) + c))
      done;
      !acc)

let make_inputs ?(n = n) ~seed () =
  ( Util.test_data ~seed ~n:(n * n) ~width:32,
    Util.test_data ~seed:(seed + 23) ~n:(n * n) ~width:32 )

let check_interp ?n:(n' = n) ?mac_stages ?(seed = 7) () =
  let m, f = build ~n:n' ?mac_stages () in
  let a, bm = make_inputs ~n:n' ~seed () in
  let result, tensors =
    Interp.run ~module_op:m ~func:f
      [ Interp.Tensor a; Interp.Tensor bm; Interp.Out_tensor ]
  in
  let out = Interp.tensor_snapshot (tensors 2) ~cycle:max_int in
  let expected = reference ~n:n' a bm in
  let ok = ref true in
  Array.iteri
    (fun i v ->
      match v with
      | Some got when Bitvec.equal got expected.(i) -> ()
      | _ -> ok := false)
    out;
  if !ok then Ok result else Error "systolic output mismatch"
