lib/resources/baselines.ml: Hir_verilog
