lib/hir/extern.ml: Bitvec Hashtbl
