lib/hir/verify_schedule.ml: Diagnostic Hashtbl Hir_ir Ir List Ops Option Pass Time_analysis Types
