examples/task_parallelism.mli:
