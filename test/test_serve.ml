(* Tests for the service core's scheduler paths and the line-JSON
   server: saturation returns `Overloaded` instead of queueing
   unboundedly, cancellation frees the worker slot (running) or never
   occupies one (queued), fair-share keeps a greedy client from
   starving a light one, priorities override FIFO — all deterministic:
   a single worker plus explicit gates make completion order a pure
   function of the scheduler's pick rule.  The socket-level tests run
   a real [Server] on a Unix socket in-process, including the
   early-closing-client regression for the SIGPIPE/EPIPE path. *)

module Service = Hir_driver.Service
module Server = Hir_driver.Server
module Protocol = Hir_driver.Protocol
module Driver = Hir_driver.Driver
module Guard = Hir_driver.Guard
module Pipeline = Hir_driver.Pipeline

let () = Hir_dialect.Ops.register ()

(* Mirror hirc's process-wide ignore: the in-process server tests
   write to sockets the test deliberately closes. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ------------------------------------------------------------------ *)
(* Harness: a 1-worker pool running string jobs, where jobs named in
   [gated] busy-wait until the gate opens (or their cancel flag is
   set), and every completion is recorded in arrival order. *)

type harness = {
  svc : (string, string) Service.t;
  completions : (string * string * bool) list ref;  (* job, result, queued-cancel *)
  mu : Mutex.t;
  gate : bool Atomic.t;
  ran : (string, int) Hashtbl.t;  (* job -> times the run fn saw it *)
  ran_mu : Mutex.t;
}

let make_harness ?(max_depth = max_int) ?(gated = fun _ -> false) () =
  let mu = Mutex.create () in
  let completions = ref [] in
  let gate = Atomic.make false in
  let ran = Hashtbl.create 8 in
  let ran_mu = Mutex.create () in
  let svc =
    Service.create ~workers:1 ~max_depth
      ~run:(fun h ->
        let job = Service.data h in
        Mutex.lock ran_mu;
        Hashtbl.replace ran job (1 + Option.value ~default:0 (Hashtbl.find_opt ran job));
        Mutex.unlock ran_mu;
        if gated job then begin
          let cancel = Service.cancel_flag h in
          while not (Atomic.get gate) && not (Atomic.get cancel) do
            Domain.cpu_relax ()
          done;
          if Atomic.get cancel then "cancelled" else "done"
        end
        else "done")
      ~cancelled:(fun _ -> "cancelled")
      ~crashed:(fun _ e -> "crashed: " ^ Printexc.to_string e)
      ~on_complete:(fun c ->
        Mutex.lock mu;
        completions :=
          (Service.data c.Service.c_handle, c.Service.c_result,
           c.Service.c_cancelled_queued)
          :: !completions;
        Mutex.unlock mu)
      ()
  in
  { svc; completions; mu; gate; ran; ran_mu }

let completion_order h =
  Mutex.lock h.mu;
  let l = List.rev_map (fun (job, _, _) -> job) !(h.completions) in
  Mutex.unlock h.mu;
  l

let submit_ok h ~client ~priority job =
  match Service.submit h.svc ~client ~priority job with
  | Service.Accepted handle -> handle
  | Service.Overloaded -> Alcotest.failf "unexpected Overloaded for %s" job
  | Service.Stopped -> Alcotest.failf "unexpected Stopped for %s" job

(* Spin until the pool reports [n] running jobs (the gated job has
   actually occupied the worker), bounded so a bug fails, not hangs. *)
let wait_running h n =
  let rec go i =
    if i = 0 then Alcotest.failf "worker never reached running=%d" n;
    if (Service.stats h.svc).Service.st_running <> n then begin
      Unix.sleepf 0.001;
      go (i - 1)
    end
  in
  go 10_000

let times_ran h job =
  Mutex.lock h.ran_mu;
  let n = Option.value ~default:0 (Hashtbl.find_opt h.ran job) in
  Mutex.unlock h.ran_mu;
  n

(* ------------------------------------------------------------------ *)
(* Scheduler-path tests                                                *)

let test_saturation_overloaded () =
  let h = make_harness ~max_depth:2 ~gated:(fun j -> j = "A") () in
  let _ = submit_ok h ~client:0 ~priority:0 "A" in
  wait_running h 1;
  let _ = submit_ok h ~client:0 ~priority:0 "B" in
  let _ = submit_ok h ~client:0 ~priority:0 "C" in
  (* Depth 2 reached: admission must push back, not queue unboundedly. *)
  (match Service.submit h.svc ~client:0 ~priority:0 "D" with
  | Service.Overloaded -> ()
  | Service.Accepted _ -> Alcotest.fail "D admitted past max_depth"
  | Service.Stopped -> Alcotest.fail "pool stopped unexpectedly");
  Atomic.set h.gate true;
  Service.shutdown h.svc;
  Alcotest.(check (list string))
    "admitted jobs all completed, D never entered" [ "A"; "B"; "C" ]
    (completion_order h);
  (* After shutdown, admission reports Stopped. *)
  match Service.submit h.svc ~client:0 ~priority:0 "E" with
  | Service.Stopped -> ()
  | _ -> Alcotest.fail "submit after shutdown must report Stopped"

let test_cancel_running_frees_slot () =
  let h = make_harness ~gated:(fun j -> j = "A") () in
  let ha = submit_ok h ~client:0 ~priority:0 "A" in
  wait_running h 1;
  let _ = submit_ok h ~client:0 ~priority:0 "B" in
  (* A is mid-"compile": cancel sets the flag; the job observes it at
     its next checkpoint, returns, and the slot frees for B. *)
  (match Service.cancel h.svc ha with
  | `Cancelling -> ()
  | `Cancelled -> Alcotest.fail "A was running, not queued"
  | `Finished -> Alcotest.fail "A cannot have finished: gate is closed");
  Service.shutdown h.svc;
  Alcotest.(check (list string)) "A unblocked first, then B ran" [ "A"; "B" ]
    (completion_order h);
  Mutex.lock h.mu;
  let a_result = List.assoc "A" (List.map (fun (j, r, _) -> (j, r)) !(h.completions)) in
  Mutex.unlock h.mu;
  Alcotest.(check string) "A observed its cancellation" "cancelled" a_result

let test_cancel_queued_never_runs () =
  let h = make_harness ~gated:(fun j -> j = "A") () in
  let _ = submit_ok h ~client:0 ~priority:0 "A" in
  wait_running h 1;
  let hb = submit_ok h ~client:0 ~priority:0 "B" in
  (match Service.cancel h.svc hb with
  | `Cancelled -> ()
  | `Cancelling | `Finished -> Alcotest.fail "B was queued; cancel must withdraw it");
  (* The synthesized completion is delivered immediately, before the
     worker ever sees B. *)
  Mutex.lock h.mu;
  let b = List.find (fun (j, _, _) -> j = "B") !(h.completions) in
  Mutex.unlock h.mu;
  (match b with
  | _, "cancelled", true -> ()
  | _, r, q -> Alcotest.failf "B completion (%s, queued-cancel=%b) wrong" r q);
  Atomic.set h.gate true;
  Service.shutdown h.svc;
  Alcotest.(check int) "B never occupied a worker" 0 (times_ran h "B");
  (* Cancelling an already-finished job is reported as such. *)
  match Service.cancel h.svc hb with
  | `Finished -> ()
  | _ -> Alcotest.fail "second cancel must report Finished"

let test_fair_share_prevents_starvation () =
  let h = make_harness ~gated:(fun j -> j = "A1") () in
  let _ = submit_ok h ~client:1 ~priority:0 "A1" in
  wait_running h 1;
  (* Greedy client 1 floods; light client 2 wants two jobs. *)
  List.iter (fun j -> ignore (submit_ok h ~client:1 ~priority:0 j))
    [ "A2"; "A3"; "A4"; "A5"; "A6" ];
  List.iter (fun j -> ignore (submit_ok h ~client:2 ~priority:0 j)) [ "B1"; "B2" ];
  Atomic.set h.gate true;
  Service.shutdown h.svc;
  (* Deficit fairness: the client with fewer served jobs wins ties, so
     B1/B2 interleave instead of waiting behind all six A's. *)
  Alcotest.(check (list string)) "light client interleaves with the flood"
    [ "A1"; "B1"; "A2"; "B2"; "A3"; "A4"; "A5"; "A6" ]
    (completion_order h)

let test_priority_overrides_fifo () =
  let h = make_harness ~gated:(fun j -> j = "A") () in
  let _ = submit_ok h ~client:0 ~priority:0 "A" in
  wait_running h 1;
  let _ = submit_ok h ~client:0 ~priority:0 "x" in
  let _ = submit_ok h ~client:0 ~priority:0 "y" in
  let _ = submit_ok h ~client:0 ~priority:5 "z" in
  Atomic.set h.gate true;
  Service.shutdown h.svc;
  Alcotest.(check (list string)) "high priority jumps the same client's queue"
    [ "A"; "z"; "x"; "y" ]
    (completion_order h)

let test_crashed_run_still_completes () =
  let completions = ref [] in
  let mu = Mutex.create () in
  let svc =
    Service.create ~workers:1
      ~run:(fun h ->
        if Service.data h = "boom" then failwith "kaboom" else "done")
      ~cancelled:(fun _ -> "cancelled")
      ~crashed:(fun _ e -> "crashed: " ^ Printexc.to_string e)
      ~on_complete:(fun c ->
        Mutex.lock mu;
        completions := (Service.data c.Service.c_handle, c.Service.c_result) :: !completions;
        Mutex.unlock mu)
      ()
  in
  ignore (Service.submit svc ~client:0 ~priority:0 "boom");
  ignore (Service.submit svc ~client:0 ~priority:0 "fine");
  Service.shutdown svc;
  let l = List.rev !completions in
  Alcotest.(check int) "both jobs completed" 2 (List.length l);
  (match List.assoc_opt "boom" l with
  | Some r when String.length r >= 7 && String.sub r 0 7 = "crashed" -> ()
  | r -> Alcotest.failf "boom completion wrong: %s" (Option.value ~default:"missing" r));
  Alcotest.(check (option string)) "worker survived the crash" (Some "done")
    (List.assoc_opt "fine" l)

(* ------------------------------------------------------------------ *)
(* Driver-level cancellation                                           *)

let test_driver_cancel_flag () =
  let cancel = Atomic.make true in
  let job =
    Driver.job_of_builder ~pipeline:(Pipeline.default ~optimize:true) ~name:"fifo"
      Hir_kernels.Fifo.build
  in
  match Driver.compile_job ~cancel job with
  | Error e ->
    Alcotest.(check bool) "classified as cancelled" true
      (e.Driver.err_class = Driver.Cancelled)
  | Ok _ -> Alcotest.fail "a pre-cancelled job must not produce output"

(* ------------------------------------------------------------------ *)
(* Latency histogram                                                   *)

let test_histogram_percentiles () =
  let h = Service.Histogram.create () in
  (* 100 samples: 90 at ~1ms, 9 at ~10ms, 1 at ~100ms. *)
  for _ = 1 to 90 do Service.Histogram.record h 0.001 done;
  for _ = 1 to 9 do Service.Histogram.record h 0.010 done;
  Service.Histogram.record h 0.100;
  let s = Service.Histogram.summarize h in
  Alcotest.(check int) "count" 100 s.Service.Histogram.count;
  let close ~what ~actual v =
    (* Log buckets have ~30% resolution; accept a factor of 1.5. *)
    if actual < v /. 1.5 || actual > v *. 1.5 then
      Alcotest.failf "%s: %g not within 1.5x of %g" what actual v
  in
  close ~what:"p50" ~actual:s.Service.Histogram.p50 0.001;
  (* Rank 99 of 100 lands on the 10ms cohort; only max sees the outlier. *)
  close ~what:"p99" ~actual:s.Service.Histogram.p99 0.010;
  close ~what:"max" ~actual:s.Service.Histogram.max 0.100

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                      *)

let test_json_roundtrip () =
  let j =
    Protocol.Json.Obj
      [
        ("op", Protocol.Json.Str "compile");
        ("id", Protocol.Json.Str "j\"1\"\n");
        ("priority", Protocol.Json.Num 3.);
        ("deadline", Protocol.Json.Num 0.25);
        ("verilog", Protocol.Json.Bool true);
        ("tags", Protocol.Json.Arr [ Protocol.Json.Null; Protocol.Json.Num 42. ]);
      ]
  in
  match Protocol.Json.parse (Protocol.Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "roundtrip" true (j = j')
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_request_parsing () =
  (match Protocol.request_of_line {|{"op":"compile","id":"a","kernel":"gemm","priority":2}|} with
  | Ok (Protocol.Compile r) ->
    Alcotest.(check string) "id" "a" r.Protocol.cr_id;
    Alcotest.(check (option string)) "kernel" (Some "gemm") r.Protocol.cr_kernel;
    Alcotest.(check int) "priority" 2 r.Protocol.cr_priority
  | Ok _ -> Alcotest.fail "wrong request kind"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Protocol.request_of_line {|{"op":"cancel","id":"a"}|} with
  | Ok (Protocol.Cancel "a") -> ()
  | _ -> Alcotest.fail "cancel frame");
  (match Protocol.request_of_line {|{"op":"compile","kernel":"gemm"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "compile without id must be rejected");
  match Protocol.request_of_line "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse"

(* ------------------------------------------------------------------ *)
(* Socket-level server tests                                           *)

let with_server ?(workers = 2) ?(max_depth = 16) f =
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hir-test-serve-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir tmp 0o755;
  let sock = Filename.concat tmp "s.sock" in
  let cfg =
    {
      (Server.default_config ~listen:(Server.Unix_path sock) ()) with
      Server.cfg_workers = workers;
      cfg_max_depth = max_depth;
    }
  in
  let server = Domain.spawn (fun () -> Server.run cfg) in
  let rec wait n =
    if n = 0 then Alcotest.fail "server socket never appeared";
    if not (Sys.file_exists sock) then begin
      Unix.sleepf 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  let finally () =
    (* Best-effort shutdown if the test didn't already. *)
    (try
       let c = Protocol.Client.connect_unix sock in
       Protocol.Client.send c (Protocol.Json.Obj [ ("op", Protocol.Json.Str "shutdown") ]);
       ignore (Protocol.Client.recv c);
       Protocol.Client.close c
     with _ -> ());
    Alcotest.(check int) "server exited cleanly" 0 (Domain.join server)
  in
  Fun.protect ~finally (fun () -> f sock)

let field = Protocol.Json.field_str

let test_server_compile_and_probes () =
  with_server (fun sock ->
      let c = Protocol.Client.connect_unix sock in
      Protocol.Client.send c
        (Protocol.Json.Obj
           [
             ("op", Protocol.Json.Str "compile");
             ("id", Protocol.Json.Str "j1");
             ("kernel", Protocol.Json.Str "transpose");
           ]);
      (match Protocol.Client.recv c with
      | Some j ->
        Alcotest.(check (option string)) "result for j1" (Some "j1") (field j "id");
        Alcotest.(check (option string)) "ok" (Some "ok") (field j "status")
      | None -> Alcotest.fail "no result");
      (* Bad input is a failed result, not a rejection or a hang. *)
      Protocol.Client.send c
        (Protocol.Json.Obj
           [
             ("op", Protocol.Json.Str "compile");
             ("id", Protocol.Json.Str "j2");
             ("name", Protocol.Json.Str "bad.hir");
             ("source", Protocol.Json.Str "func is not hir {");
           ]);
      (match Protocol.Client.recv c with
      | Some j ->
        Alcotest.(check (option string)) "failed" (Some "failed") (field j "status")
      | None -> Alcotest.fail "no result for bad source");
      Protocol.Client.send c (Protocol.Json.Obj [ ("op", Protocol.Json.Str "metrics") ]);
      (match Protocol.Client.recv c with
      | Some j -> (
        Alcotest.(check (option string)) "metrics event" (Some "metrics")
          (field j "event");
        match Protocol.Json.mem "jobs" j with
        | Some jobs ->
          Alcotest.(check (option int)) "two jobs submitted" (Some 2)
            (Protocol.Json.field_int jobs "submitted")
        | None -> Alcotest.fail "metrics lacks jobs")
      | None -> Alcotest.fail "no metrics");
      Protocol.Client.close c)

let test_server_survives_early_close () =
  with_server (fun sock ->
      (* The rude client: asks for multi-MB output, hangs up unread. *)
      let rude = Protocol.Client.connect_unix sock in
      Protocol.Client.send rude
        (Protocol.Json.Obj
           [
             ("op", Protocol.Json.Str "compile");
             ("id", Protocol.Json.Str "rude");
             ("kernel", Protocol.Json.Str "gemm");
             ("verilog", Protocol.Json.Bool true);
           ]);
      Unix.sleepf 1.0;
      Protocol.Client.close rude;
      (* A polite client must be unaffected. *)
      let c = Protocol.Client.connect_unix sock in
      Protocol.Client.send c
        (Protocol.Json.Obj
           [
             ("op", Protocol.Json.Str "compile");
             ("id", Protocol.Json.Str "ok1");
             ("kernel", Protocol.Json.Str "fifo");
           ]);
      (match Protocol.Client.recv c with
      | Some j ->
        Alcotest.(check (option string)) "server still serving" (Some "ok")
          (field j "status")
      | None -> Alcotest.fail "server died after client hangup");
      Protocol.Client.close c)

let test_server_disconnect_cancels_queued () =
  (* One worker and a burst of slow jobs from a client that vanishes:
     the disconnect must withdraw its queued jobs (freeing the queue)
     and the server must stay healthy.  Every admitted job still gets
     a completion internally — observable as a clean shutdown (the
     pool drains) rather than a hang. *)
  with_server ~workers:1 (fun sock ->
      let rude = Protocol.Client.connect_unix sock in
      for i = 1 to 6 do
        Protocol.Client.send rude
          (Protocol.Json.Obj
             [
               ("op", Protocol.Json.Str "compile");
               ("id", Protocol.Json.Str (Printf.sprintf "g%d" i));
               ("kernel", Protocol.Json.Str "gemm");
             ])
      done;
      Protocol.Client.close rude;
      let c = Protocol.Client.connect_unix sock in
      Protocol.Client.send c
        (Protocol.Json.Obj
           [
             ("op", Protocol.Json.Str "compile");
             ("id", Protocol.Json.Str "after");
             ("kernel", Protocol.Json.Str "fifo");
           ]);
      (match Protocol.Client.recv c with
      | Some j ->
        Alcotest.(check (option string)) "post-disconnect job ok" (Some "ok")
          (field j "status")
      | None -> Alcotest.fail "no result after disconnect");
      Protocol.Client.close c)

let () =
  Alcotest.run "serve"
    [
      ( "scheduler",
        [
          Alcotest.test_case "saturation returns overloaded" `Quick
            test_saturation_overloaded;
          Alcotest.test_case "cancel running frees the slot" `Quick
            test_cancel_running_frees_slot;
          Alcotest.test_case "cancel queued never runs" `Quick
            test_cancel_queued_never_runs;
          Alcotest.test_case "fair share prevents starvation" `Quick
            test_fair_share_prevents_starvation;
          Alcotest.test_case "priority overrides fifo" `Quick
            test_priority_overrides_fifo;
          Alcotest.test_case "crashed run still completes" `Quick
            test_crashed_run_still_completes;
        ] );
      ( "driver",
        [ Alcotest.test_case "cancel flag pre-set" `Quick test_driver_cancel_flag ] );
      ( "histogram",
        [ Alcotest.test_case "log-bucket percentiles" `Quick test_histogram_percentiles ]
      );
      ( "protocol",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "request parsing" `Quick test_request_parsing;
        ] );
      ( "server",
        [
          Alcotest.test_case "compile and probes" `Quick test_server_compile_and_probes;
          Alcotest.test_case "survives early close" `Quick
            test_server_survives_early_close;
          Alcotest.test_case "disconnect cancels queued" `Quick
            test_server_disconnect_cancels_queued;
        ] );
    ]
