(* Registry of the evaluation kernels (paper Section 8) plus the
   task-parallel pipeline of Listing 3. *)

open Hir_ir

type t = {
  name : string;
  description : string;
  build : unit -> Ir.op * Ir.op;  (* (module, top-level function) *)
  check : unit -> (Hir_dialect.Interp.result, string) result;
}

let all =
  [
    {
      name = Transpose.name;
      description = "16x16 matrix transpose, pipelined inner loop (Listing 1)";
      build = Transpose.build;
      check = (fun () -> Transpose.check_interp ());
    };
    {
      name = Stencil1d.name;
      description = "1-d weighted stencil with a register window, II=1 (Listing 2)";
      build = Stencil1d.build;
      check = (fun () -> Stencil1d.check_interp ());
    };
    {
      name = Histogram.name;
      description = "256-bin histogram with data-dependent BRAM accesses";
      build = Histogram.build;
      check = (fun () -> Histogram.check_interp ());
    };
    {
      name = Gemm.name;
      description = "16x16 GEMM on a 16x16 PE array built from nested unroll_for";
      build = Gemm.build;
      check = (fun () -> Gemm.check_interp ());
    };
    {
      name = Systolic.name;
      description =
        "8x8 output-stationary systolic array, explicit delay-hop dataflow";
      build = Systolic.build;
      check = (fun () -> Systolic.check_interp ());
    };
    {
      name = Convolution.name;
      description = "8x8 image x 3x3 constant kernel, line buffers, II=1";
      build = Convolution.build;
      check = (fun () -> Convolution.check_interp ());
    };
    {
      name = Fifo.name;
      description = "depth-256 flow-through BRAM FIFO, concurrent push/pop";
      build = Fifo.build;
      check = (fun () -> Fifo.check_interp ());
    };
    {
      name = Elementwise_max.name;
      description = "element-wise max: comparator + mux datapath, II=1";
      build = Elementwise_max.build;
      check = (fun () -> Elementwise_max.check_interp ());
    };
    {
      name = Taskparallel.name;
      description = "two stencils overlapped in lock-step (Listing 3)";
      build = Taskparallel.build;
      check = (fun () -> Taskparallel.check_interp ());
    };
  ]

let find name = List.find_opt (fun k -> k.name = name) all

(* ------------------------------------------------------------------ *)
(* "did you mean?" suggestions                                         *)

(* Levenshtein distance between [a] and [b], two rows at a time. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (prev.(j) + 1) (cur.(j - 1) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

(* Candidates within a small edit distance of [name], closest first,
   capped at three — the raw material for "unknown kernel" errors.
   The threshold scales with the query so short names don't match
   everything and long names tolerate a couple of typos. *)
let suggest_from ~candidates name =
  let limit = max 2 (String.length name / 3) in
  List.filter_map
    (fun c ->
      let d = edit_distance name c in
      if d <= limit then Some (d, c) else None)
    candidates
  |> List.sort compare
  |> List.filteri (fun i _ -> i < 3)
  |> List.map snd

let suggest name = suggest_from ~candidates:(List.map (fun k -> k.name) all) name
