(* Automatic precision optimization (paper Section 6.3, Table 4): the
   compiler infers value ranges from constant loop bounds and narrows
   every register, counter and address bus that does not need its
   declared 32 bits.

     dune exec examples/precision_optimization.exe *)

open Hir_ir
open Hir_dialect
module Emit = Hir_codegen.Emit
module Model = Hir_resources.Model

let iv_widths func =
  Ir.Walk.find_all func "hir.for"
  |> List.map (fun loop ->
         match Ir.Value.typ (Ops.loop_induction_var loop) with
         | Typ.Int w -> w
         | _ -> 0)

let usage_of ~optimize =
  let m, f = Hir_kernels.Transpose.build () in
  let emitted = Emit.compile ~optimize ~module_op:m ~top:f () in
  Model.design_usage emitted.Emit.design

let () =
  Ops.register ();
  let m, f = Hir_kernels.Transpose.build () in
  Printf.printf "matrix transpose, before precision optimization:\n";
  Printf.printf "  loop induction variables: %s bits\n"
    (String.concat ", " (List.map string_of_int (iv_widths f)));

  let changed = Precision_opt.run m in
  Printf.printf "\nafter Precision_opt.run (changed = %b):\n" changed;
  Printf.printf "  loop induction variables: %s bits\n"
    (String.concat ", " (List.map string_of_int (iv_widths f)));
  List.iter
    (fun d ->
      match Ir.Value.typ (Ir.Op.result d 0) with
      | Typ.Int w -> Printf.printf "  delayed address register:  %d bits\n" w
      | _ -> ())
    (Ir.Walk.find_all f "hir.delay");

  (* The design still verifies and still transposes. *)
  let engine = Diagnostic.Engine.create () in
  Verify_schedule.verify_module engine m;
  assert (not (Diagnostic.Engine.has_errors engine));
  let input = Hir_kernels.Transpose.make_input ~seed:7 in
  let _, tensors =
    Interp.run ~module_op:m ~func:f [ Interp.Tensor input; Interp.Out_tensor ]
  in
  let out = Interp.tensor_snapshot (tensors 1) ~cycle:max_int in
  let expected = Hir_kernels.Transpose.reference input in
  Array.iteri
    (fun i v ->
      match v with
      | Some got when Bitvec.equal got expected.(i) -> ()
      | _ -> failwith "semantics changed!")
    out;
  print_endline "  semantics preserved (interpreter check passed)\n";

  (* Resource impact (Table 4). *)
  let before = usage_of ~optimize:false in
  let after = usage_of ~optimize:true in
  Format.printf "resources without optimization: %a\n" Model.pp before;
  Format.printf "resources with    optimization: %a\n" Model.pp after;
  Printf.printf "(paper Table 4: HIR no-opt 32 LUT / 72 FF, HIR auto-opt 8 LUT / 18 FF)\n"
