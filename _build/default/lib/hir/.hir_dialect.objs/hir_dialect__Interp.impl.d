lib/hir/interp.ml: Array Bitvec Extern Format Hashtbl Hir_ir Ir List Ops Option Typ Types
