(* The evaluation kernels as C-like HLS sources with Vivado-style
   pragmas — the "C++ fed to Vivado HLS" side of Tables 4, 5 and 6.
   Loop structure, pipelining and unrolling match the HIR designs in
   [Hir_kernels] so the comparison is between equally optimized
   designs, as in the paper. *)

open Ast

(* --------------------------- transpose --------------------------- *)

(* [iv_width] distinguishes the baseline (32-bit everything) from the
   manually optimized variant of Table 4 (ap_uint<5> indices). *)
let transpose ?(iv_width = 32) () =
  {
    fn_name = "transpose_hls";
    params =
      [
        P_array (In, array ~width:32 "A" [ 16; 16 ]);
        P_array (Out, array ~width:32 "B" [ 16; 16 ]);
      ];
    locals = [];
    body =
      [
        for_ ~var_ty:(ty iv_width) "i" ~lb:0 ~ub:16
          [
            for_ ~var_ty:(ty iv_width) ~pipeline:1 "j" ~lb:0 ~ub:16
              [
                let_ "t" (load "A" [ v "i"; v "j" ]);
                store "B" [ v "j"; v "i" ] (v "t");
              ];
          ];
      ];
  }

(* --------------------------- stencil ----------------------------- *)

let stencil () =
  {
    fn_name = "stencil_hls";
    params =
      [
        P_array (In, array ~width:32 "A" [ 64 ]);
        P_array (Out, array ~width:32 "B" [ 64 ]);
      ];
    locals = [ array ~width:32 ~partition:[ 0 ] "win" [ 2 ] ];
    body =
      [
        let_ "a0" (load "A" [ Int 0 ]);
        let_ "a1" (load "A" [ Int 1 ]);
        store "win" [ Int 0 ] (v "a0");
        store "win" [ Int 1 ] (v "a1");
        for_ ~pipeline:1 "i" ~lb:1 ~ub:63
          [
            let_ "v0" (load "win" [ Int 0 ]);
            let_ "v1" (load "win" [ Int 1 ]);
            let_ "vn" (load "A" [ v "i" +: Int 1 ]);
            let_ "r" ((Int 3 *: v "v0") +: (Int 5 *: v "v1"));
            store "B" [ v "i" ] (v "r");
            store "win" [ Int 0 ] (v "v1");
            store "win" [ Int 1 ] (v "vn");
          ];
      ];
  }

(* --------------------------- histogram --------------------------- *)

let histogram () =
  {
    fn_name = "histogram_hls";
    params =
      [
        P_array (In, array ~width:8 "img" [ 256 ]);
        P_array (Out, array ~width:32 "histo" [ 256 ]);
      ];
    locals = [ array ~width:32 ~storage:Bram "hist" [ 256 ] ];
    body =
      [
        for_ ~pipeline:1 "bc" ~lb:0 ~ub:256 [ store "hist" [ v "bc" ] (Int 0) ];
        (* The accumulation loop asks for II=1; the modulo scheduler
           discovers the BRAM read-modify-write recurrence and settles
           on II=2, as Vivado does. *)
        for_ ~pipeline:1 "p" ~lb:0 ~ub:256
          [
            let_ "pix" (load "img" [ v "p" ]);
            let_ "cnt" (load "hist" [ v "pix" ]);
            store "hist" [ v "pix" ] (v "cnt" +: Int 1);
          ];
        for_ ~pipeline:1 "bo" ~lb:0 ~ub:256
          [ store "histo" [ v "bo" ] (load "hist" [ v "bo" ]) ];
      ];
  }

(* ----------------------------- gemm ------------------------------ *)

let gemm ?(n = 16) () =
  {
    fn_name = "gemm_hls";
    params =
      [
        P_array (In, array ~width:32 ~partition:[ 0 ] "A" [ n; n ]);
        P_array (In, array ~width:32 ~partition:[ 1 ] "B" [ n; n ]);
        P_array (Out, array ~width:32 "C" [ n; n ]);
      ];
    locals =
      [
        array ~width:32 ~partition:[ 0 ] ~storage:Lutram "ab" [ n; n ];
        array ~width:32 ~partition:[ 1 ] ~storage:Lutram "bb" [ n; n ];
        array ~width:32 ~partition:[ 0; 1 ] "acc" [ n; n ];
      ];
    body =
      [
        (* Zero the accumulators: fully parallel (all banks). *)
        for_ ~unroll:true "zi" ~lb:0 ~ub:n
          [
            for_ ~unroll:true "zj" ~lb:0 ~ub:n
              [ store "acc" [ v "zi"; v "zj" ] (Int 0) ];
          ];
        (* Load local buffers, one column/row per cycle. *)
        for_ ~pipeline:1 "k" ~lb:0 ~ub:n
          [
            for_ ~unroll:true "li" ~lb:0 ~ub:n
              [
                store "ab" [ v "li"; v "k" ] (load "A" [ v "li"; v "k" ]);
                store "bb" [ v "k"; v "li" ] (load "B" [ v "k"; v "li" ]);
              ];
          ];
        (* The PE grid: 256 multiply-accumulates per cycle. *)
        for_ ~pipeline:1 "kk" ~lb:0 ~ub:n
          [
            for_ ~unroll:true "pi" ~lb:0 ~ub:n
              [
                for_ ~unroll:true "pj" ~lb:0 ~ub:n
                  [
                    store "acc" [ v "pi"; v "pj" ]
                      (load "acc" [ v "pi"; v "pj" ]
                      +: (load "ab" [ v "pi"; v "kk" ] *: load "bb" [ v "kk"; v "pj" ]));
                  ];
              ];
          ];
        (* Drain through the single output port; the port constraint
           serializes the unrolled stores, one per cycle. *)
        for_ ~unroll:true "di" ~lb:0 ~ub:n
          [
            for_ ~unroll:true "dj" ~lb:0 ~ub:n
              [ store "C" [ v "di"; v "dj" ] (load "acc" [ v "di"; v "dj" ]) ];
          ];
      ];
  }

(* --------------------------- systolic ---------------------------- *)

(* The HLS-side counterpart of the systolic kernel: C tools cannot
   express the explicit delay-hop dataflow, so this is the idiomatic
   Vivado formulation of the same workload — a fully partitioned
   accumulator grid updated by an unrolled MAC sweep per k, drained
   through the single output port.  What the comparison measures is
   the same algorithm under each tool's natural idiom, as with gemm. *)
let systolic ?(n = 8) () =
  {
    fn_name = "systolic_hls";
    params =
      [
        P_array (In, array ~width:32 ~partition:[ 0 ] "A" [ n; n ]);
        P_array (In, array ~width:32 ~partition:[ 1 ] "B" [ n; n ]);
        P_array (Out, array ~width:32 "C" [ n; n ]);
      ];
    locals = [ array ~width:32 ~partition:[ 0; 1 ] "acc" [ n; n ] ];
    body =
      [
        for_ ~unroll:true "zi" ~lb:0 ~ub:n
          [
            for_ ~unroll:true "zj" ~lb:0 ~ub:n
              [ store "acc" [ v "zi"; v "zj" ] (Int 0) ];
          ];
        for_ ~pipeline:1 "k" ~lb:0 ~ub:n
          [
            for_ ~unroll:true "si" ~lb:0 ~ub:n
              [
                for_ ~unroll:true "sj" ~lb:0 ~ub:n
                  [
                    store "acc" [ v "si"; v "sj" ]
                      (load "acc" [ v "si"; v "sj" ]
                      +: (load "A" [ v "si"; v "k" ] *: load "B" [ v "k"; v "sj" ]));
                  ];
              ];
          ];
        for_ ~unroll:true "di" ~lb:0 ~ub:n
          [
            for_ ~unroll:true "dj" ~lb:0 ~ub:n
              [ store "C" [ v "di"; v "dj" ] (load "acc" [ v "di"; v "dj" ]) ];
          ];
      ];
  }

(* -------------------------- convolution -------------------------- *)

let convolution () =
  let weights = [| [| 1; 2; 1 |]; [| 2; 4; 2 |]; [| 1; 2; 1 |] |] in
  let tap r k =
    (* taps: w<r>0 = win[r][0], w<r>1 = win[r][1], stream_r — the
       window registers are read once into temps before being
       shifted. *)
    match k with
    | 0 -> v (Printf.sprintf "w%d0" r)
    | 1 -> v (Printf.sprintf "w%d1" r)
    | _ -> v (match r with 0 -> "top" | 1 -> "mid" | _ -> "bot")
  in
  let sum =
    (* Fold the nine taps into a sum tree from an explicit head term:
       the grid is a literal 3x3, so the term list is non-empty by
       construction and no partial [Option.get] is needed. *)
    match
      List.concat_map
        (fun r -> List.map (fun k -> Int weights.(r).(k) *: tap r k) [ 0; 1; 2 ])
        [ 0; 1; 2 ]
    with
    | [] -> Int 0
    | t :: rest -> List.fold_left ( +: ) t rest
  in
  {
    fn_name = "convolution_hls";
    params =
      [
        P_array (In, array ~width:32 "img" [ 64 ]);
        P_array (Out, array ~width:32 "out" [ 64 ]);
      ];
    locals =
      [
        array ~width:32 ~partition:[ 0 ] ~storage:Lutram "lb" [ 2; 8 ];
        array ~width:32 ~partition:[ 0; 1 ] "win" [ 3; 2 ];
      ];
    body =
      [
        (* Clear the window registers and line buffers (reads of
           uninitialized memory are UB). *)
        for_ ~unroll:true "wr" ~lb:0 ~ub:3
          [
            store "win" [ v "wr"; Int 0 ] (Int 0);
            store "win" [ v "wr"; Int 1 ] (Int 0);
          ];
        for_ ~pipeline:1 "cc" ~lb:0 ~ub:8
          [
            store "lb" [ Int 0; v "cc" ] (Int 0);
            store "lb" [ Int 1; v "cc" ] (Int 0);
          ];
        for_ ~pipeline:1 ~dep_free:[ "lb" ] "p" ~lb:0 ~ub:64
          [
            let_ "col" (v "p" &: Int 7);
            let_ "top" (load "lb" [ Int 0; v "col" ]);
            let_ "mid" (load "lb" [ Int 1; v "col" ]);
            let_ "bot" (load "img" [ v "p" ]);
            let_ "w00" (load "win" [ Int 0; Int 0 ]);
            let_ "w01" (load "win" [ Int 0; Int 1 ]);
            let_ "w10" (load "win" [ Int 1; Int 0 ]);
            let_ "w11" (load "win" [ Int 1; Int 1 ]);
            let_ "w20" (load "win" [ Int 2; Int 0 ]);
            let_ "w21" (load "win" [ Int 2; Int 1 ]);
            let_ "sum" sum;
            store "out" [ v "p" ] (v "sum");
            store "lb" [ Int 0; v "col" ] (v "mid");
            store "lb" [ Int 1; v "col" ] (v "bot");
            store "win" [ Int 0; Int 0 ] (v "w01");
            store "win" [ Int 0; Int 1 ] (v "top");
            store "win" [ Int 1; Int 0 ] (v "w11");
            store "win" [ Int 1; Int 1 ] (v "mid");
            store "win" [ Int 2; Int 0 ] (v "w21");
            store "win" [ Int 2; Int 1 ] (v "bot");
          ];
      ];
  }

let all () =
  [
    ("transpose", transpose ());
    ("stencil_1d", stencil ());
    ("histogram", histogram ());
    ("gemm", gemm ());
    ("systolic", systolic ());
    ("convolution", convolution ());
  ]

(* By-name lookup under the Table 5 benchmark names, for drivers that
   want to run a single suite kernel (e.g. `hirc sim --hls`). *)
let find name = List.assoc_opt name (all ())
