(* Full expansion of hir.unroll_for (paper Section 7.3): the body is
   cloned once per iteration, the !hir.const induction variable is
   substituted with a constant, and every schedule reference to the
   iteration time variable is retargeted to the parent time domain with
   a constant offset bump.  After this pass a design contains only
   hir.for loops and straight-line ops, which is what the code
   generator consumes. *)

open Hir_ir

(* Retarget every use of [old_time] as a time operand to [new_time],
   adding [delta] to the using op's offset attribute.  Time operands
   are always of !hir.time type, and each scheduled op has exactly one,
   so walking [old_time]'s use list visits exactly the scheduled ops to
   bump — no module scan. *)
let retarget_time_uses ~old_time ~new_time ~delta =
  List.iter
    (fun (op, i) ->
      Ir.Op.set_operand op i new_time;
      match Ir.Op.int_attr_opt op "offset" with
      | Some off -> Ir.Op.set_attr op "offset" (Attribute.Int (off + delta))
      | None -> ())
    (Ir.Value.uses old_time)

(* The yield of an unroll body defines where the next iteration starts,
   as (time value, constant offset). *)
let yield_target op =
  let y = Ops.loop_yield op in
  (Ops.yield_time y, Ops.yield_offset y)

(* ------------------------------------------------------------------ *)
(* Emission groups.

   Each expanded iteration tags its ops with a fresh "emit_group" Int
   attribute so the code generator can recognize the N structurally
   identical clones of one body and outline them into a shared module
   definition.  The ids themselves are arbitrary (they never reach the
   emitted Verilog — the outliner's canonical form is id-independent);
   all that matters is that ops from the same clone share an id and ops
   from different clones never do.  When an outer unroll clones a body
   that already carries tags (from an inner unroll expanded earlier —
   expansion is innermost-first), each clone remaps every pre-existing
   id to a fresh one, consistently within the clone, so the inner
   groups stay distinct across outer iterations instead of merging.

   Ids are drawn from [Ir.fresh_id]: the counter is domain-local (no
   races between parallel compile jobs) and reset by
   [Ir.with_isolated_ids], so the printed IR of a freshly built module
   — which the driver's cache key is computed from — comes out
   byte-identical on every build. *)

let fresh_group () = Ir.fresh_id ()

let group_attr = "emit_group"

(* Tag one freshly spliced clone: top-level ops that carry no tag get
   [gid]; already tagged ops (at any depth) get their old id remapped
   through a per-clone table.  Nested untagged ops are left alone — the
   emitter's group stack makes them inherit their innermost enclosing
   group at emission time. *)
let tag_clone ~gid cloned_ops =
  let remap = Hashtbl.create 8 in
  List.iter
    (fun top ->
      Ir.Walk.ops_pre top ~f:(fun o ->
          match Ir.Op.int_attr_opt o group_attr with
          | Some old ->
            let fresh =
              match Hashtbl.find_opt remap old with
              | Some g -> g
              | None ->
                let g = fresh_group () in
                Hashtbl.replace remap old g;
                g
            in
            Ir.Op.set_attr o group_attr (Attribute.Int fresh)
          | None -> ());
      if Ir.Op.int_attr_opt top group_attr = None && Ir.Op.name top <> "hir.yield" then
        Ir.Op.set_attr top group_attr (Attribute.Int gid))
    cloned_ops

let expand_one _module_op op =
  let parent_block =
    match Ir.Op.parent op with Some b -> b | None -> failwith "detached unroll_for"
  in
  let lb = Ops.unroll_for_lb op in
  let ub = Ops.unroll_for_ub op in
  let step = Ops.unroll_for_step op in
  let body = Ops.loop_body op in
  let iv = Ir.Block.arg body 0 in
  let ti = Ir.Block.arg body 1 in
  (* Current start point: (time value, offset delta). *)
  let current = ref (Ops.unroll_for_time op, Ops.unroll_for_offset op) in
  let k = ref lb in
  while !k < ub do
    let time_v, delta = !current in
    (* Constant for this iteration's induction variable. *)
    let const_op =
      Ir.Op.create ~loc:(Ir.Op.loc op)
        ~attrs:[ ("value", Attribute.Int !k) ]
        ~result_hints:[ Some (Printf.sprintf "u%d" !k) ]
        "hir.constant" ~operands:[] ~result_types:[ Types.Const ]
    in
    Ir.Block.insert_before parent_block ~anchor:op const_op;
    (* Clone the body with iv substituted. *)
    let mapping = Hashtbl.create 16 in
    Hashtbl.replace mapping (Ir.Value.id iv) (Ir.Op.result const_op 0);
    let cloned_block = Ir.Clone.clone_block ~mapping body in
    let cloned_ti =
      match Hashtbl.find_opt mapping (Ir.Value.id ti) with
      | Some v -> v
      | None -> failwith "unroll: iteration time not cloned"
    in
    (* Splice the whole cloned body before the unroll op in one move
       (the ops keep their use links; only their parent changes). *)
    let cloned_ops = Ir.Block.transfer_before parent_block ~anchor:op cloned_block in
    (* The body-level yield is the only hir.yield at the top level of
       the splice (nested loops keep theirs inside their regions). *)
    let body_yield = List.find (fun o -> Ir.Op.name o = "hir.yield") cloned_ops in
    (* Mark this iteration's ops as one emission group (see above). *)
    tag_clone ~gid:(fresh_group ()) cloned_ops;
    (* Retarget schedule references from the cloned ti: its uses are
       exactly the scheduled ops of this clone. *)
    retarget_time_uses ~old_time:cloned_ti ~new_time:time_v ~delta;
    (* Next iteration starts where this clone's yield pointed. *)
    let next_time = Ops.yield_time body_yield in
    let next_off = Ops.yield_offset body_yield in
    current := (next_time, next_off);
    (* The yield itself is control metadata; drop it. *)
    Ir.Block.remove parent_block body_yield;
    k := !k + step
  done;
  (* Uses of the unroll's completion time continue from the final
     start point. *)
  let final_time, final_delta = !current in
  retarget_time_uses ~old_time:(Ir.Op.result op 0) ~new_time:final_time
    ~delta:final_delta;
  (* Deep-erase the unroll op: the original (un-cloned) body still
     hangs off it, and its ops' use links must be dropped with it. *)
  Ir.erase_op op

let run module_op =
  let changed = ref false in
  let rec fixpoint () =
    (* Innermost first: collect in post-order and expand the first
       unroll that contains no nested unroll. *)
    let candidates = ref [] in
    Ir.Walk.ops_post module_op ~f:(fun op ->
        if Ir.Op.name op = "hir.unroll_for" then candidates := !candidates @ [ op ]);
    match !candidates with
    | [] -> ()
    | op :: _ ->
      expand_one module_op op;
      changed := true;
      fixpoint ()
  in
  fixpoint ();
  !changed

let pass =
  Pass.make ~name:"unroll"
    ~description:"Fully expand hir.unroll_for bodies (Section 7.3)"
    (fun module_op _engine -> run module_op)
