lib/codegen/emit.ml: Array Attribute Bitvec Format Hashtbl Hir_dialect Hir_ir Hir_verilog Ir List Location Names Ops Option Passes Precision_opt Printf Typ Types Unroll
