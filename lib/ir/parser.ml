(* Parser for the generic textual form emitted by [Printer].  The
   grammar is the MLIR generic-op grammar restricted to what this IR
   supports (single-block regions with argument lists, no successor
   lists). *)

exception Parse_error of Location.t * string

let fail loc msg = raise (Parse_error (loc, msg))

type state = {
  lex : Lexer.t;
  scope : (string, Ir.value * Location.t) Hashtbl.t;
      (* SSA name -> value and the location that defined it *)
  mutable depth : int;  (* current region-nesting depth *)
}

(* The parser is recursive-descent, so region nesting consumes OCaml
   stack; bound it so a pathological input is a parse error rather
   than a [Stack_overflow].  Real designs nest a handful of levels. *)
let max_region_depth = 64

let lookup_value st name loc =
  match Hashtbl.find_opt st.scope name with
  | Some (v, _) -> v
  | None -> fail loc (Printf.sprintf "use of undefined value %%%s" name)

(* A second definition of the same SSA name is an error reported with
   both locations — [Hashtbl.replace] would silently shadow the first
   binding and rewire every later use. *)
let define_value st name v loc =
  match Hashtbl.find_opt st.scope name with
  | Some (_, prior_loc) ->
    fail loc
      (Printf.sprintf "redefinition of value %%%s (previously defined at %s)" name
         (Location.to_string prior_loc))
  | None -> Hashtbl.replace st.scope name (v, loc)

let rec parse_attr_value st =
  match Lexer.next st.lex with
  | Lexer.INT n, _ -> Attribute.Int n
  | Lexer.STRING s, _ -> Attribute.String s
  | Lexer.AT s, _ -> Attribute.Symbol s
  | Lexer.IDENT "true", _ -> Attribute.Bool true
  | Lexer.IDENT "false", _ -> Attribute.Bool false
  | Lexer.IDENT "unit", _ -> Attribute.Unit
  | Lexer.LBRACKET, loc ->
    (* Arrays and dicts recurse, so they count against the same nesting
       bound as regions. *)
    if st.depth >= max_region_depth then
      fail loc (Printf.sprintf "attributes nested deeper than %d levels" max_region_depth);
    st.depth <- st.depth + 1;
    let rec go acc =
      if Lexer.accept st.lex Lexer.RBRACKET then List.rev acc
      else begin
        let v = parse_attr_value st in
        if Lexer.accept st.lex Lexer.COMMA then go (v :: acc)
        else begin
          Lexer.expect st.lex Lexer.RBRACKET;
          List.rev (v :: acc)
        end
      end
    in
    let a = Attribute.Array (go []) in
    st.depth <- st.depth - 1;
    a
  | Lexer.LBRACE, loc ->
    if st.depth >= max_region_depth then
      fail loc (Printf.sprintf "attributes nested deeper than %d levels" max_region_depth);
    st.depth <- st.depth + 1;
    let d = Attribute.Dict (parse_attr_entries st) in
    st.depth <- st.depth - 1;
    d
  | Lexer.BANG, loc ->
    let kind = Lexer.expect_ident st.lex in
    if kind <> "ty" then fail loc "expected !ty<...> attribute"
    else begin
      Lexer.expect st.lex Lexer.LANGLE;
      let t = Type_parser.parse st.lex in
      Lexer.expect st.lex Lexer.RANGLE;
      Attribute.Type t
    end
  | got, loc -> fail loc ("expected attribute value, found " ^ Lexer.token_to_string got)

and parse_attr_entries st =
  (* Assumes the opening brace is already consumed; consumes the
     closing brace. *)
  if Lexer.accept st.lex Lexer.RBRACE then []
  else begin
    let rec go acc =
      let key = Lexer.expect_ident st.lex in
      Lexer.expect st.lex Lexer.EQUAL;
      let v = parse_attr_value st in
      let acc = (key, v) :: acc in
      if Lexer.accept st.lex Lexer.COMMA then go acc
      else begin
        Lexer.expect st.lex Lexer.RBRACE;
        List.rev acc
      end
    in
    go []
  end

let parse_loc st =
  (* 'loc' '(' STRING [':' INT ':' INT] ')' — optional trailer. *)
  match Lexer.peek_token st.lex with
  | Lexer.IDENT "loc" ->
    ignore (Lexer.next st.lex);
    Lexer.expect st.lex Lexer.LPAREN;
    let s =
      match Lexer.next st.lex with
      | Lexer.STRING s, _ -> s
      | got, loc -> fail loc ("expected string in loc(...), found " ^ Lexer.token_to_string got)
    in
    let result =
      if Lexer.accept st.lex Lexer.COLON then begin
        let line = Lexer.expect_int st.lex in
        Lexer.expect st.lex Lexer.COLON;
        let col = Lexer.expect_int st.lex in
        Location.file ~file:s ~line ~col
      end
      else Location.name s
    in
    Lexer.expect st.lex Lexer.RPAREN;
    result
  | _ -> Location.unknown

let rec parse_op st =
  (* Optional results. *)
  let results =
    match Lexer.peek_token st.lex with
    | Lexer.PERCENT _ ->
      let rec go acc =
        match Lexer.next st.lex with
        | Lexer.PERCENT name, name_loc ->
          if Lexer.accept st.lex Lexer.COMMA then go ((name, name_loc) :: acc)
          else begin
            Lexer.expect st.lex Lexer.EQUAL;
            List.rev ((name, name_loc) :: acc)
          end
        | got, loc -> fail loc ("expected %result, found " ^ Lexer.token_to_string got)
      in
      go []
    | _ -> []
  in
  let name, name_loc =
    match Lexer.next st.lex with
    | Lexer.STRING s, loc -> (s, loc)
    | got, loc -> fail loc ("expected op name string, found " ^ Lexer.token_to_string got)
  in
  (* Operands. *)
  Lexer.expect st.lex Lexer.LPAREN;
  let operands =
    let rec go acc =
      match Lexer.peek_token st.lex with
      | Lexer.RPAREN ->
        ignore (Lexer.next st.lex);
        List.rev acc
      | _ -> (
        match Lexer.next st.lex with
        | Lexer.PERCENT n, loc ->
          let v = lookup_value st n loc in
          if Lexer.accept st.lex Lexer.COMMA then go (v :: acc)
          else begin
            Lexer.expect st.lex Lexer.RPAREN;
            List.rev (v :: acc)
          end
        | got, loc -> fail loc ("expected %operand, found " ^ Lexer.token_to_string got))
    in
    go []
  in
  (* Optional regions. *)
  let regions =
    if Lexer.peek_token st.lex = Lexer.LPAREN then begin
      ignore (Lexer.next st.lex);
      let rec go acc =
        let r = parse_region st in
        if Lexer.accept st.lex Lexer.COMMA then go (r :: acc)
        else begin
          Lexer.expect st.lex Lexer.RPAREN;
          List.rev (r :: acc)
        end
      in
      go []
    end
    else []
  in
  (* Optional attributes. *)
  let attrs =
    if Lexer.accept st.lex Lexer.LBRACE then parse_attr_entries st else []
  in
  (* Type signature. *)
  Lexer.expect st.lex Lexer.COLON;
  Lexer.expect st.lex Lexer.LPAREN;
  let operand_types =
    let rec go acc =
      if Lexer.accept st.lex Lexer.RPAREN then List.rev acc
      else begin
        let t = Type_parser.parse st.lex in
        if Lexer.accept st.lex Lexer.COMMA then go (t :: acc)
        else begin
          Lexer.expect st.lex Lexer.RPAREN;
          List.rev (t :: acc)
        end
      end
    in
    go []
  in
  Lexer.expect st.lex Lexer.ARROW;
  Lexer.expect st.lex Lexer.LPAREN;
  let result_types =
    let rec go acc =
      if Lexer.accept st.lex Lexer.RPAREN then List.rev acc
      else begin
        let t = Type_parser.parse st.lex in
        if Lexer.accept st.lex Lexer.COMMA then go (t :: acc)
        else begin
          Lexer.expect st.lex Lexer.RPAREN;
          List.rev (t :: acc)
        end
      end
    in
    go []
  in
  let loc = parse_loc st in
  if List.length operand_types <> List.length operands then
    fail name_loc "operand count does not match operand type list";
  if List.length result_types <> List.length results then
    fail name_loc "result count does not match result type list";
  (* Check declared operand types against the resolved values. *)
  List.iter2
    (fun v t ->
      if not (Typ.equal v.Ir.v_type t) then
        fail name_loc
          (Printf.sprintf "operand type mismatch: value has %s, signature says %s"
             (Typ.to_string v.Ir.v_type) (Typ.to_string t)))
    operands operand_types;
  let op =
    Ir.Op.create ~attrs ~regions ~loc name ~operands ~result_types
      ~result_hints:(List.map (fun (n, _) -> Some n) results)
  in
  List.iteri
    (fun i (n, name_loc) -> define_value st n (Ir.Op.result op i) name_loc)
    results;
  op

and parse_region st =
  (match Lexer.peek st.lex with
  | Lexer.LBRACE, loc when st.depth >= max_region_depth ->
    fail loc (Printf.sprintf "regions nested deeper than %d levels" max_region_depth)
  | _ -> ());
  Lexer.expect st.lex Lexer.LBRACE;
  st.depth <- st.depth + 1;
  let rec go acc =
    match Lexer.peek_token st.lex with
    | Lexer.RBRACE ->
      ignore (Lexer.next st.lex);
      List.rev acc
    | _ -> go (parse_block st :: acc)
  in
  let blocks = go [] in
  st.depth <- st.depth - 1;
  Ir.Region.create ~blocks ()

and parse_block st =
  (match Lexer.next st.lex with
  | Lexer.CARET _, _ -> ()
  | got, loc -> fail loc ("expected block label ^.., found " ^ Lexer.token_to_string got));
  Lexer.expect st.lex Lexer.LPAREN;
  let args =
    let rec go acc =
      if Lexer.accept st.lex Lexer.RPAREN then List.rev acc
      else begin
        match Lexer.next st.lex with
        | Lexer.PERCENT n, name_loc ->
          Lexer.expect st.lex Lexer.COLON;
          let t = Type_parser.parse st.lex in
          let acc = (n, name_loc, t) :: acc in
          if Lexer.accept st.lex Lexer.COMMA then go acc
          else begin
            Lexer.expect st.lex Lexer.RPAREN;
            List.rev acc
          end
        | got, loc -> fail loc ("expected %blockarg, found " ^ Lexer.token_to_string got)
      end
    in
    go []
  in
  Lexer.expect st.lex Lexer.COLON;
  let block =
    Ir.Block.create
      ~arg_hints:(List.map (fun (n, _, _) -> Some n) args)
      (List.map (fun (_, _, t) -> t) args)
  in
  List.iteri
    (fun i (n, name_loc, _) -> define_value st n (Ir.Block.arg block i) name_loc)
    args;
  let rec go () =
    match Lexer.peek_token st.lex with
    | Lexer.RBRACE | Lexer.CARET _ -> ()
    | _ ->
      Ir.Block.append block (parse_op st);
      go ()
  in
  go ();
  block

let parse_string ?(file = "<input>") src =
  let st = { lex = Lexer.create ~file src; scope = Hashtbl.create 64; depth = 0 } in
  let op = parse_op st in
  (match Lexer.peek st.lex with
  | Lexer.EOF, _ -> ()
  | got, loc -> fail loc ("trailing input: " ^ Lexer.token_to_string got));
  op

let parse_file path =
  let ic = open_in_bin path in
  let src =
    (* [Fun.protect] so a read error cannot leak the channel. *)
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string ~file:path src
