lib/hls/ast.ml: List Printf
