(* Quickstart: build a small HIR design with the public builder API,
   verify it, run it in the cycle-accurate interpreter, and generate
   synthesizable Verilog.

     dune exec examples/quickstart.exe

   The design adds two arrays element-wise with a pipelined (II = 1)
   loop — the corrected version of the paper's Figure 1a: the write
   address is explicitly delayed to meet the write's schedule. *)

open Hir_ir
open Hir_dialect

let n = 16

let build () =
  let m = Builder.create_module () in
  let memref port = Types.memref ~dims:[ n ] ~elem:Typ.i32 ~port () in
  let f =
    Builder.func m ~name:"array_add"
      ~args:
        [
          Builder.arg "A" (memref Types.Read);
          Builder.arg "B" (memref Types.Read);
          Builder.arg "C" (memref Types.Write);
        ]
      (fun b args t ->
        match args with
        | [ a; bb; c ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          let cn = Builder.constant b n in
          let _tf =
            Builder.for_loop b ~iv_hint:"i" ~lb:c0 ~ub:cn ~step:c1
              ~at:Builder.(t @>> 1)
              (fun b ~iv:i ~ti ->
                Builder.yield b ~at:Builder.(ti @>> 1);
                (* Reads are issued at %ti and return one cycle later. *)
                let va = Builder.mem_read b a [ i ] ~at:Builder.(ti @>> 0) in
                let vb = Builder.mem_read b bb [ i ] ~at:Builder.(ti @>> 0) in
                let sum = Builder.add b va vb in
                (* The loop is pipelined: by ti+1 the induction variable
                   has moved on, so the address must be delayed — this
                   is exactly what the schedule verifier would reject
                   otherwise (Figure 1 of the paper). *)
                let i1 = Builder.delay b i ~by:1 ~at:Builder.(ti @>> 0) in
                Builder.mem_write b sum c [ i1 ] ~at:Builder.(ti @>> 1))
          in
          Builder.return_ b []
        | _ -> assert false)
  in
  (m, f)

let () =
  Ops.register ();
  let m, f = build () in

  (* 1. Verify: structure + schedule. *)
  let engine = Diagnostic.Engine.create () in
  (match Verify.verify m with
  | Ok () -> ()
  | Error e -> List.iter (Diagnostic.Engine.emit engine) (Diagnostic.Engine.to_list e));
  Verify_schedule.verify_module engine m;
  if Diagnostic.Engine.has_errors engine then begin
    prerr_endline (Diagnostic.Engine.to_string engine);
    exit 1
  end;
  print_endline "== design verifies ==\n";

  (* 2. Print the textual IR. *)
  print_endline "== HIR (generic textual form) ==";
  print_endline (Printer.op_to_string m);

  (* 3. Execute with the cycle-accurate interpreter. *)
  let input_a = Array.init n (fun i -> Bitvec.of_int ~width:32 (i * 10)) in
  let input_b = Array.init n (fun i -> Bitvec.of_int ~width:32 (i + 100)) in
  let result, tensors =
    Interp.run ~module_op:m ~func:f
      [ Interp.Tensor input_a; Interp.Tensor input_b; Interp.Out_tensor ]
  in
  let out = Interp.tensor_snapshot (tensors 2) ~cycle:max_int in
  Printf.printf "\n== interpreter: %d cycles, C = " result.Interp.cycles;
  Array.iter
    (fun v ->
      match v with
      | Some b -> Printf.printf "%s " (Bitvec.to_string b)
      | None -> print_string "? ")
    out;
  print_newline ();

  (* 4. Generate Verilog. *)
  let emitted = Hir_codegen.Emit.compile ~optimize:true ~module_op:m ~top:f () in
  let verilog = Hir_verilog.Pretty.design_to_string emitted.Hir_codegen.Emit.design in
  Printf.printf "\n== generated Verilog (%d bytes) ==\n" (String.length verilog);
  print_string verilog;

  (* 5. Resource estimate. *)
  let usage = Hir_resources.Model.design_usage emitted.Hir_codegen.Emit.design in
  Format.printf "\n== resources (7-series model): %a ==\n" Hir_resources.Model.pp usage
