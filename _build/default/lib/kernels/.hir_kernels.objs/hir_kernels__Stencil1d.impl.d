lib/kernels/stencil1d.ml: Array Bitvec Builder Hir_dialect Hir_ir Interp List Ops Typ Types Util
