(* The line-JSON wire protocol for `hirc serve`.

   One request per line, one JSON object per line back; responses to a
   connection are interleaved in completion order and correlated by the
   client-chosen job [id].  The codec is hand-rolled (the repo has no
   JSON dependency and the protocol is deliberately small): a strict
   recursive-descent parser with a depth limit, and a printer that
   always emits a single line.

   Request frames (field order free, unknown fields ignored):
     {"op":"compile","id":ID, "client":NAME?, "kernel":NAME |
      "name":N,"source":TEXT, "top":F?, "passes":SPEC?, "priority":INT?,
      "deadline":SECS?, "verilog":BOOL?}
     {"op":"cancel","id":ID}
     {"op":"poll","client":NAME?,"id":ID?}
     {"op":"health"}      {"op":"metrics"}      {"op":"shutdown"}

   The optional "client" field is a stable identity that survives
   reconnects: a named client's jobs keep running when its connection
   drops, and "poll" fetches their retained results afterwards.
   Without it a job belongs to the connection (and dies with it).

   Response frames:
     {"event":"result","id":ID,"status":"ok|degraded|failed|cancelled|rejected",…}
     {"event":"cancel","id":ID,"state":"cancelled|cancelling|finished|unknown"}
     {"event":"poll","id":ID,"state":"pending|unknown"}   (done resends the result)
     {"event":"poll","jobs":[{"id":…,"state":…},…]}       (poll without id)
     {"event":"health",…}  {"event":"metrics",…}  {"event":"shutdown"}
     {"event":"error","message":…}        (unparseable/invalid frame)

   `GET /health` and `GET /metrics` over the same socket get a one-shot
   HTTP response (see [Server]), so a plain curl probe works too. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  (* ---------------- printing ---------------- *)

  let rec print buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v ->
      Buffer.add_string buf
        (if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
         else Printf.sprintf "%.9g" v)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (Trace.json_escape s);
      Buffer.add_char buf '"'
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          print buf x)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          print buf (Str k);
          Buffer.add_char buf ':';
          print buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    print buf j;
    Buffer.contents buf

  (* A complete frame: the JSON on one line, newline-terminated. *)
  let to_line j = to_string j ^ "\n"

  (* ---------------- parsing ---------------- *)

  exception Bad of string

  let max_depth = 64

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      if peek () = Some c then advance ()
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    (* \uXXXX escapes are re-encoded as UTF-8. *)
    let utf8_of_code buf c =
      if c < 0x80 then Buffer.add_char buf (Char.chr c)
      else if c < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape");
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code -> utf8_of_code buf code
            | None -> fail "invalid \\u escape")
          | _ -> fail "invalid escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && num_char s.[!pos] do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some v -> v
      | None -> fail "invalid number"
    in
    let rec parse_value depth =
      if depth > max_depth then fail "nesting too deep";
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
      | Some _ -> Num (parse_number ())
    in
    try
      let v = parse_value 0 in
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
    with Bad msg -> Error msg

  (* ---------------- accessors ---------------- *)

  let mem name = function Obj fields -> List.assoc_opt name fields | _ -> None
  let str_opt = function Str s -> Some s | _ -> None
  let num_opt = function Num v -> Some v | _ -> None
  let bool_opt = function Bool b -> Some b | _ -> None
  let field_str j name = Option.bind (mem name j) str_opt
  let field_num j name = Option.bind (mem name j) num_opt
  let field_bool j name = Option.bind (mem name j) bool_opt
  let field_int j name = Option.map int_of_float (field_num j name)
end

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type compile_req = {
  cr_id : string;  (* client-chosen correlation id, unique per conn *)
  cr_client : string option;  (* stable identity surviving reconnects *)
  cr_kernel : string option;  (* built-in kernel name … *)
  cr_name : string option;  (* … or inline source with a display name *)
  cr_source : string option;
  cr_top : string option;
  cr_passes : string option;  (* textual pipeline spec; None = default *)
  cr_priority : int;  (* higher runs first; default 0 *)
  cr_deadline : float option;  (* per-job wall-clock limit, seconds *)
  cr_want_verilog : bool;  (* include the Verilog in the response *)
}

type poll_req = {
  pl_client : string option;  (* whose jobs; None = this connection's *)
  pl_id : string option;  (* one job, or None for a listing *)
}

type request =
  | Compile of compile_req
  | Cancel of string
  | Poll of poll_req
  | Health
  | Metrics
  | Shutdown

let request_of_json j =
  match Json.field_str j "op" with
  | None -> Error "missing \"op\" field"
  | Some "health" -> Ok Health
  | Some "metrics" -> Ok Metrics
  | Some "shutdown" -> Ok Shutdown
  | Some "poll" ->
    Ok (Poll { pl_client = Json.field_str j "client"; pl_id = Json.field_str j "id" })
  | Some "cancel" -> (
    match Json.field_str j "id" with
    | Some id -> Ok (Cancel id)
    | None -> Error "cancel: missing \"id\"")
  | Some "compile" -> (
    match Json.field_str j "id" with
    | None -> Error "compile: missing \"id\""
    | Some id ->
      let kernel = Json.field_str j "kernel" in
      let source = Json.field_str j "source" in
      (match (kernel, source) with
      | None, None -> Error "compile: needs \"kernel\" or \"source\""
      | Some _, Some _ -> Error "compile: \"kernel\" and \"source\" are exclusive"
      | _ ->
        Ok
          (Compile
             {
               cr_id = id;
               cr_client = Json.field_str j "client";
               cr_kernel = kernel;
               cr_name = Json.field_str j "name";
               cr_source = source;
               cr_top = Json.field_str j "top";
               cr_passes = Json.field_str j "passes";
               cr_priority = Option.value ~default:0 (Json.field_int j "priority");
               cr_deadline = Json.field_num j "deadline";
               cr_want_verilog =
                 Option.value ~default:false (Json.field_bool j "verilog");
             })))
  | Some op -> Error (Printf.sprintf "unknown op %S" op)

let request_of_line line =
  match Json.parse line with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok j -> request_of_json j

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let error_frame msg = Json.Obj [ ("event", Json.Str "error"); ("message", Json.Str msg) ]

(* An admission rejection: the job never entered the queue.  Reasons:
   "overloaded" (queue full), "shutting-down", "duplicate-id". *)
let rejected_frame ~id reason =
  Json.Obj
    [
      ("event", Json.Str "result");
      ("id", Json.Str id);
      ("status", Json.Str "rejected");
      ("reason", Json.Str reason);
    ]

let cancel_frame ~id state =
  Json.Obj
    [ ("event", Json.Str "cancel"); ("id", Json.Str id); ("state", Json.Str state) ]

(* The terminal frame for an admitted job, built from its report. *)
let result_frame ~id ~want_verilog (r : Driver.report) =
  let status = Driver.status_to_string (Driver.report_status r) in
  let base =
    [
      ("event", Json.Str "result");
      ("id", Json.Str id);
      ("status", Json.Str status);
      ("job", Json.Str r.Driver.rp_job);
      ("attempts", Json.Num (float_of_int r.Driver.rp_attempts));
    ]
  in
  let rest =
    match r.Driver.rp_outcome with
    | Ok o ->
      [
        ("top", Json.Str o.Driver.top_name);
        ("from_cache", Json.Bool o.Driver.from_cache);
        ("seconds", Json.Num o.Driver.seconds);
        ( "degradations",
          Json.Arr (List.map (fun d -> Json.Str d) o.Driver.degradations) );
      ]
      @ (if want_verilog then [ ("verilog", Json.Str o.Driver.verilog) ] else [])
    | Error e ->
      [
        ( "diagnostics",
          Json.Arr
            (List.map
               (fun d -> Json.Str (Hir_ir.Diagnostic.to_string d))
               e.Driver.err_diags) );
      ]
  in
  Json.Obj (base @ rest)

(* ------------------------------------------------------------------ *)
(* Client: blocking line-JSON over a socket, for tests and the swarm
   bench.  Reads buffer until a newline; [recv] returns None on EOF. *)

module Client = struct
  type t = { fd : Unix.file_descr; buf : Buffer.t; mutable eof : bool }

  let of_fd fd = { fd; buf = Buffer.create 1024; eof = false }

  let connect_unix path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    of_fd fd

  let connect_tcp host port =
    let addr = Unix.inet_addr_of_string host in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (addr, port));
    of_fd fd

  (* Write a whole frame; raises [Unix.Unix_error (EPIPE, _, _)] if the
     server is gone (SIGPIPE is ignored process-wide). *)
  let send_line t line =
    let data = Bytes.of_string line in
    let len = Bytes.length data in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write t.fd data !off (len - !off)
    done

  let send t j = send_line t (Json.to_line j)

  let rec recv_line t =
    let contents = Buffer.contents t.buf in
    match String.index_opt contents '\n' with
    | Some i ->
      let line = String.sub contents 0 i in
      Buffer.clear t.buf;
      Buffer.add_string t.buf
        (String.sub contents (i + 1) (String.length contents - i - 1));
      Some line
    | None ->
      if t.eof then None
      else begin
        let chunk = Bytes.create 65536 in
        let got = Unix.read t.fd chunk 0 (Bytes.length chunk) in
        if got = 0 then begin
          t.eof <- true;
          (* A final unterminated fragment is dropped: frames end in \n. *)
          None
        end
        else begin
          Buffer.add_subbytes t.buf chunk 0 got;
          recv_line t
        end
      end

  let recv t =
    match recv_line t with
    | None -> None
    | Some line -> (
      match Json.parse line with
      | Ok j -> Some j
      | Error e -> Some (error_frame ("client: bad frame from server: " ^ e)))

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end
