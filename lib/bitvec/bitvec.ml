(* Arbitrary-width bit vectors on little-endian int64 chunks.

   Invariant: [chunks] has exactly [nchunks w] elements and every bit at
   position >= w is zero.  All constructors re-establish the invariant
   via [norm]. *)

type t = { w : int; chunks : int64 array }

let nchunks w = (w + 63) / 64

let check_width w = if w < 1 then invalid_arg "Bitvec: width must be >= 1"

(* Mask for the last (partial) chunk of a width-w vector. *)
let top_mask w =
  let r = w land 63 in
  if r = 0 then -1L else Int64.sub (Int64.shift_left 1L r) 1L

let norm w chunks =
  let n = nchunks w in
  let last = n - 1 in
  chunks.(last) <- Int64.logand chunks.(last) (top_mask w);
  { w; chunks }

let width v = v.w

let zero w =
  check_width w;
  { w; chunks = Array.make (nchunks w) 0L }

let make_chunks w = Array.make (nchunks w) 0L

let of_int64 ~width:w n =
  check_width w;
  let chunks = make_chunks w in
  chunks.(0) <- n;
  (* Sign-extend a negative value across the remaining chunks. *)
  if Int64.compare n 0L < 0 then
    for i = 1 to Array.length chunks - 1 do
      chunks.(i) <- -1L
    done;
  norm w chunks

let of_int ~width n = of_int64 ~width (Int64.of_int n)
let one w = of_int ~width:w 1

let ones w =
  check_width w;
  let chunks = Array.make (nchunks w) (-1L) in
  norm w chunks

let of_bool b = of_int ~width:1 (if b then 1 else 0)

let bit v i =
  if i < 0 then invalid_arg "Bitvec.bit: negative index"
  else if i >= v.w then false
  else
    let c = v.chunks.(i lsr 6) in
    Int64.logand (Int64.shift_right_logical c (i land 63)) 1L = 1L

let msb v = bit v (v.w - 1)

let is_zero v = Array.for_all (fun c -> c = 0L) v.chunks

let popcount v =
  let count_chunk c =
    let n = ref 0 in
    for i = 0 to 63 do
      if Int64.logand (Int64.shift_right_logical c i) 1L = 1L then incr n
    done;
    !n
  in
  Array.fold_left (fun acc c -> acc + count_chunk c) 0 v.chunks

let min_width v =
  let rec hi_chunk i = if i < 0 then None else if v.chunks.(i) <> 0L then Some i else hi_chunk (i - 1) in
  match hi_chunk (Array.length v.chunks - 1) with
  | None -> 1
  | Some i ->
    let c = v.chunks.(i) in
    let rec top b = if Int64.shift_right_logical c b <> 0L then b + 1 else top (b - 1) in
    (i * 64) + top 63

let equal a b = a.w = b.w && Array.for_all2 Int64.equal a.chunks b.chunks

(* Unsigned chunk comparison: flip the sign bit so that Int64.compare
   orders chunks as unsigned values. *)
let ucmp_chunk a b = Int64.unsigned_compare a b

let compare a b =
  (* Unsigned value comparison, width-agnostic: compare from the high
     chunks down, treating missing chunks as zero. *)
  let na = Array.length a.chunks and nb = Array.length b.chunks in
  let n = max na nb in
  let rec go i =
    if i < 0 then 0
    else
      let ca = if i < na then a.chunks.(i) else 0L in
      let cb = if i < nb then b.chunks.(i) else 0L in
      let c = ucmp_chunk ca cb in
      if c <> 0 then c else go (i - 1)
  in
  go (n - 1)

let hash v = Hashtbl.hash (v.w, v.chunks)

let to_int64_trunc v = v.chunks.(0)

let to_int v =
  if min_width v > 62 then failwith "Bitvec.to_int: value too large"
  else Int64.to_int v.chunks.(0)

(* Low 63 bits as a native int (Int64.to_int truncates modulo 2^63);
   exact for width <= 63 — the masked-int representation of the RTL
   simulator's unboxed fast path. *)
let to_int_trunc v = Int64.to_int v.chunks.(0)

let to_int_opt v = if min_width v > 62 then None else Some (Int64.to_int v.chunks.(0))

let same_width name a b =
  if a.w <> b.w then
    invalid_arg (Printf.sprintf "Bitvec.%s: width mismatch (%d vs %d)" name a.w b.w)

let lognot v =
  let chunks = Array.map Int64.lognot v.chunks in
  norm v.w chunks

let map2 name f a b =
  same_width name a b;
  norm a.w (Array.map2 f a.chunks b.chunks)

let logand a b = map2 "logand" Int64.logand a b
let logor a b = map2 "logor" Int64.logor a b
let logxor a b = map2 "logxor" Int64.logxor a b

let add a b =
  same_width "add" a b;
  let n = Array.length a.chunks in
  let out = Array.make n 0L in
  let carry = ref 0L in
  for i = 0 to n - 1 do
    let s = Int64.add a.chunks.(i) b.chunks.(i) in
    let s' = Int64.add s !carry in
    (* Carry-out detection for unsigned 64-bit addition. *)
    let c1 = if Int64.unsigned_compare s a.chunks.(i) < 0 then 1L else 0L in
    let c2 = if Int64.unsigned_compare s' s < 0 then 1L else 0L in
    out.(i) <- s';
    carry := Int64.add c1 c2
  done;
  norm a.w out

let neg v = add (lognot v) (one v.w)

let sub a b =
  same_width "sub" a b;
  add a (neg b)

let zero_extend ~width:w v =
  check_width w;
  if w < v.w then invalid_arg "Bitvec.zero_extend: target narrower than source";
  let chunks = make_chunks w in
  Array.blit v.chunks 0 chunks 0 (Array.length v.chunks);
  norm w chunks

let sign_extend ~width:w v =
  check_width w;
  if w < v.w then invalid_arg "Bitvec.sign_extend: target narrower than source";
  if not (msb v) then zero_extend ~width:w v
  else begin
    let chunks = Array.make (nchunks w) (-1L) in
    Array.blit v.chunks 0 chunks 0 (Array.length v.chunks);
    (* Set the sign bits within the source's top chunk. *)
    let top = Array.length v.chunks - 1 in
    chunks.(top) <- Int64.logor v.chunks.(top) (Int64.lognot (top_mask v.w));
    norm w chunks
  end

let truncate ~width:w v =
  check_width w;
  if w > v.w then invalid_arg "Bitvec.truncate: target wider than source";
  let chunks = Array.sub v.chunks 0 (nchunks w) in
  norm w chunks

let resize ~width:w v = if w >= v.w then zero_extend ~width:w v else truncate ~width:w v

let resize_signed ~width:w v =
  if w >= v.w then sign_extend ~width:w v else truncate ~width:w v

let to_signed_int v =
  if msb v then
    let m = neg v in
    if min_width m > 62 then failwith "Bitvec.to_signed_int: value out of range"
    else -Int64.to_int m.chunks.(0)
  else to_int v

let compare_signed a b =
  match (msb a, msb b) with
  | true, false -> -1
  | false, true -> 1
  | false, false -> compare a b
  | true, true ->
    (* Both negative: wider magnitude sign-extension keeps ordering if we
       compare at a common width. *)
    let w = max a.w b.w in
    compare (sign_extend ~width:w a) (sign_extend ~width:w b)

let shift_left v k =
  if k < 0 then invalid_arg "Bitvec.shift_left: negative shift";
  if k >= v.w then zero v.w
  else begin
    let n = Array.length v.chunks in
    let out = Array.make n 0L in
    let cs = k lsr 6 and bs = k land 63 in
    for i = n - 1 downto 0 do
      let lo = if i - cs >= 0 then v.chunks.(i - cs) else 0L in
      let hi = if bs > 0 && i - cs - 1 >= 0 then v.chunks.(i - cs - 1) else 0L in
      out.(i) <-
        (if bs = 0 then lo
         else Int64.logor (Int64.shift_left lo bs) (Int64.shift_right_logical hi (64 - bs)))
    done;
    norm v.w out
  end

let shift_right_logical v k =
  if k < 0 then invalid_arg "Bitvec.shift_right_logical: negative shift";
  if k >= v.w then zero v.w
  else begin
    let n = Array.length v.chunks in
    let out = Array.make n 0L in
    let cs = k lsr 6 and bs = k land 63 in
    for i = 0 to n - 1 do
      let lo = if i + cs < n then v.chunks.(i + cs) else 0L in
      let hi = if bs > 0 && i + cs + 1 < n then v.chunks.(i + cs + 1) else 0L in
      out.(i) <-
        (if bs = 0 then lo
         else Int64.logor (Int64.shift_right_logical lo bs) (Int64.shift_left hi (64 - bs)))
    done;
    norm v.w out
  end

let shift_right_arith v k =
  if k < 0 then invalid_arg "Bitvec.shift_right_arith: negative shift";
  let k = min k v.w in
  let shifted = if k = v.w then zero v.w else shift_right_logical v k in
  if not (msb v) || k = 0 then shifted
  else begin
    (* Fill the vacated top k bits with ones. *)
    let fill = shift_left (ones v.w) (v.w - k) in
    logor shifted fill
  end

let extract ~hi ~lo v =
  if lo < 0 || hi < lo || hi >= v.w then
    invalid_arg
      (Printf.sprintf "Bitvec.extract: bad range [%d:%d] of width %d" hi lo v.w);
  truncate ~width:(hi - lo + 1) (shift_right_logical v lo)

let concat hi lo =
  let w = hi.w + lo.w in
  logor (shift_left (zero_extend ~width:w hi) lo.w) (zero_extend ~width:w lo)

let mul_full a b =
  let w = a.w + b.w in
  (* Schoolbook multiplication over 32-bit half-chunks to keep partial
     products inside 64 bits. *)
  let halves v =
    let n = Array.length v.chunks in
    Array.init (2 * n) (fun i ->
        let c = v.chunks.(i lsr 1) in
        if i land 1 = 0 then Int64.logand c 0xFFFFFFFFL
        else Int64.shift_right_logical c 32)
  in
  let ha = halves a and hb = halves b in
  let nh = nchunks w * 2 in
  let acc = Array.make (nh + 1) 0L in
  Array.iteri
    (fun i ai ->
      if ai <> 0L then
        Array.iteri
          (fun j bj ->
            let k = i + j in
            if k < nh then begin
              let p = Int64.mul ai bj in
              (* Add p into acc at half-position k with carry ripple. *)
              let rec add_at k v =
                if k <= nh && v <> 0L then begin
                  let s = Int64.add acc.(k) (Int64.logand v 0xFFFFFFFFL) in
                  acc.(k) <- Int64.logand s 0xFFFFFFFFL;
                  add_at (k + 1)
                    (Int64.add (Int64.shift_right_logical v 32)
                       (Int64.shift_right_logical s 32))
                end
              in
              add_at k p
            end)
          hb)
    ha;
  let chunks = make_chunks w in
  for i = 0 to Array.length chunks - 1 do
    let lo = if 2 * i < Array.length acc then acc.(2 * i) else 0L in
    let hi = if (2 * i) + 1 < Array.length acc then acc.((2 * i) + 1) else 0L in
    chunks.(i) <- Int64.logor lo (Int64.shift_left hi 32)
  done;
  norm w chunks

let mul a b =
  same_width "mul" a b;
  truncate ~width:a.w (mul_full a b)

(* Long division: restoring division bit by bit.  Slow but simple and
   only used by simulator division, which is rare in the kernels. *)
let divmod a b =
  same_width "divmod" a b;
  if is_zero b then (ones a.w, a)
  else begin
    let w = a.w in
    let q = ref (zero w) and r = ref (zero w) in
    for i = w - 1 downto 0 do
      r := shift_left !r 1;
      if bit a i then r := logor !r (one w);
      if compare !r b >= 0 then begin
        r := sub !r b;
        q := logor !q (shift_left (one w) i)
      end
    done;
    (!q, !r)
  end

let udiv a b = fst (divmod a b)
let urem a b = snd (divmod a b)

let of_bin_string s =
  let bits =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> List.of_seq
  in
  if bits = [] then invalid_arg "Bitvec.of_bin_string: empty";
  let w = List.length bits in
  let v = ref (zero w) in
  List.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> v := logor !v (shift_left (one w) (w - 1 - i))
      | _ -> invalid_arg "Bitvec.of_bin_string: non-binary digit")
    bits;
  !v

let of_hex_string ~width:w s =
  check_width w;
  let v = ref (zero w) in
  String.iter
    (fun c ->
      if c <> '_' then begin
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> invalid_arg "Bitvec.of_hex_string: non-hex digit"
        in
        v := logor (shift_left !v 4) (of_int ~width:w d)
      end)
    s;
  !v

let to_bin_string v =
  String.init v.w (fun i -> if bit v (v.w - 1 - i) then '1' else '0')

let to_hex_string v =
  let ndigits = (v.w + 3) / 4 in
  String.init ndigits (fun i ->
      let lo = (ndigits - 1 - i) * 4 in
      let hi = min (lo + 3) (v.w - 1) in
      let d = to_int (extract ~hi ~lo v) in
      "0123456789abcdef".[d])

let to_string v =
  (* Decimal via repeated division by 10^9. *)
  if min_width v <= 62 then string_of_int (to_int v)
  else begin
    let base = of_int ~width:v.w 1_000_000_000 in
    let rec go v acc =
      if is_zero v then acc
      else
        let q, r = divmod v base in
        let part = string_of_int (to_int r) in
        let part =
          if is_zero q then part
          else String.make (9 - String.length part) '0' ^ part
        in
        go q (part :: acc)
    in
    match go v [] with [] -> "0" | parts -> String.concat "" parts
  end

let to_signed_string v =
  if msb v then "-" ^ to_string (neg v) else to_string v

let pp fmt v = Format.fprintf fmt "%d'd%s" v.w (to_string v)
