(* Full expansion of hir.unroll_for (paper Section 7.3): the body is
   cloned once per iteration, the !hir.const induction variable is
   substituted with a constant, and every schedule reference to the
   iteration time variable is retargeted to the parent time domain with
   a constant offset bump.  After this pass a design contains only
   hir.for loops and straight-line ops, which is what the code
   generator consumes. *)

open Hir_ir

(* Retarget every use of [old_time] as a time operand to [new_time],
   adding [delta] to the using op's offset attribute.  Time operands
   are always of !hir.time type, and each scheduled op has exactly one,
   so walking [old_time]'s use list visits exactly the scheduled ops to
   bump — no module scan. *)
let retarget_time_uses ~old_time ~new_time ~delta =
  List.iter
    (fun (op, i) ->
      Ir.Op.set_operand op i new_time;
      match Ir.Op.int_attr_opt op "offset" with
      | Some off -> Ir.Op.set_attr op "offset" (Attribute.Int (off + delta))
      | None -> ())
    (Ir.Value.uses old_time)

(* The yield of an unroll body defines where the next iteration starts,
   as (time value, constant offset). *)
let yield_target op =
  let y = Ops.loop_yield op in
  (Ops.yield_time y, Ops.yield_offset y)

let expand_one _module_op op =
  let parent_block =
    match Ir.Op.parent op with Some b -> b | None -> failwith "detached unroll_for"
  in
  let lb = Ops.unroll_for_lb op in
  let ub = Ops.unroll_for_ub op in
  let step = Ops.unroll_for_step op in
  let body = Ops.loop_body op in
  let iv = Ir.Block.arg body 0 in
  let ti = Ir.Block.arg body 1 in
  (* Current start point: (time value, offset delta). *)
  let current = ref (Ops.unroll_for_time op, Ops.unroll_for_offset op) in
  let k = ref lb in
  while !k < ub do
    let time_v, delta = !current in
    (* Constant for this iteration's induction variable. *)
    let const_op =
      Ir.Op.create ~loc:(Ir.Op.loc op)
        ~attrs:[ ("value", Attribute.Int !k) ]
        ~result_hints:[ Some (Printf.sprintf "u%d" !k) ]
        "hir.constant" ~operands:[] ~result_types:[ Types.Const ]
    in
    Ir.Block.insert_before parent_block ~anchor:op const_op;
    (* Clone the body with iv substituted. *)
    let mapping = Hashtbl.create 16 in
    Hashtbl.replace mapping (Ir.Value.id iv) (Ir.Op.result const_op 0);
    let cloned_block = Ir.Clone.clone_block ~mapping body in
    let cloned_ti =
      match Hashtbl.find_opt mapping (Ir.Value.id ti) with
      | Some v -> v
      | None -> failwith "unroll: iteration time not cloned"
    in
    (* Splice the whole cloned body before the unroll op in one move
       (the ops keep their use links; only their parent changes). *)
    let cloned_ops = Ir.Block.transfer_before parent_block ~anchor:op cloned_block in
    (* The body-level yield is the only hir.yield at the top level of
       the splice (nested loops keep theirs inside their regions). *)
    let body_yield = List.find (fun o -> Ir.Op.name o = "hir.yield") cloned_ops in
    (* Retarget schedule references from the cloned ti: its uses are
       exactly the scheduled ops of this clone. *)
    retarget_time_uses ~old_time:cloned_ti ~new_time:time_v ~delta;
    (* Next iteration starts where this clone's yield pointed. *)
    let next_time = Ops.yield_time body_yield in
    let next_off = Ops.yield_offset body_yield in
    current := (next_time, next_off);
    (* The yield itself is control metadata; drop it. *)
    Ir.Block.remove parent_block body_yield;
    k := !k + step
  done;
  (* Uses of the unroll's completion time continue from the final
     start point. *)
  let final_time, final_delta = !current in
  retarget_time_uses ~old_time:(Ir.Op.result op 0) ~new_time:final_time
    ~delta:final_delta;
  (* Deep-erase the unroll op: the original (un-cloned) body still
     hangs off it, and its ops' use links must be dropped with it. *)
  Ir.erase_op op

let run module_op =
  let changed = ref false in
  let rec fixpoint () =
    (* Innermost first: collect in post-order and expand the first
       unroll that contains no nested unroll. *)
    let candidates = ref [] in
    Ir.Walk.ops_post module_op ~f:(fun op ->
        if Ir.Op.name op = "hir.unroll_for" then candidates := !candidates @ [ op ]);
    match !candidates with
    | [] -> ()
    | op :: _ ->
      expand_one module_op op;
      changed := true;
      fixpoint ()
  in
  fixpoint ();
  !changed

let pass =
  Pass.make ~name:"unroll"
    ~description:"Fully expand hir.unroll_for bodies (Section 7.3)"
    (fun module_op _engine -> run module_op)
