(* Unit tests for the Verilog substrate: the pretty printer, the
   elaborator (flattening), and the two-phase RTL simulator — width
   semantics, register/memory timing, hierarchy, assertions, and
   combinational-loop detection. *)

module V = Hir_verilog.Ast
module Pretty = Hir_verilog.Pretty
module Flatten = Hir_rtl.Flatten
module Sim = Hir_rtl.Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let bv w n = Bitvec.of_int ~width:w n

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let simple_module ?(ports = []) items =
  {
    V.mod_name = "top";
    ports = { V.port_name = "clk"; dir = V.Input; width = 1 } :: ports;
    items;
  }

let design m = { V.modules = [ m ]; top = "top" }

let sim_of items ~ports = Sim.create (Flatten.flatten (design (simple_module ~ports items)))

(* ------------------------------------------------------------------ *)
(* Combinational evaluation                                            *)

let test_expr_eval () =
  let sim =
    sim_of
      ~ports:[ { V.port_name = "x"; dir = V.Input; width = 8 } ]
      [
        V.Wire_decl { name = "y"; width = 8 };
        V.Assign { target = "y"; expr = V.Binop (V.Add, V.Ref "x", V.const_int ~width:8 3) };
        V.Wire_decl { name = "cmp"; width = 1 };
        V.Assign
          { target = "cmp"; expr = V.Binop (V.Lt, V.Ref "x", V.const_int ~width:8 100) };
        V.Wire_decl { name = "slice"; width = 4 };
        V.Assign { target = "slice"; expr = V.Slice (V.Ref "x", 7, 4) };
        V.Wire_decl { name = "mux"; width = 8 };
        V.Assign
          {
            target = "mux";
            expr = V.Ternary (V.Ref "cmp", V.Ref "y", V.const_int ~width:8 0);
          };
      ]
  in
  Sim.set_input sim "x" (bv 8 0xAB);
  Sim.settle_only sim;
  check_int "add wraps" ((0xAB + 3) land 0xFF) (Bitvec.to_int (Sim.peek sim "y"));
  check_int "unsigned compare" 0 (Bitvec.to_int (Sim.peek sim "cmp"));
  check_int "slice" 0xA (Bitvec.to_int (Sim.peek sim "slice"));
  check_int "mux takes else" 0 (Bitvec.to_int (Sim.peek sim "mux"));
  Sim.set_input sim "x" (bv 8 5);
  Sim.settle_only sim;
  check_int "mux takes then" 8 (Bitvec.to_int (Sim.peek sim "mux"))

let test_mixed_width_context () =
  (* A narrow wire zero-extends into a wider assignment context. *)
  let sim =
    sim_of
      ~ports:[ { V.port_name = "a"; dir = V.Input; width = 4 } ]
      [
        V.Wire_decl { name = "wide"; width = 12 };
        V.Assign
          {
            target = "wide";
            expr = V.Binop (V.Add, V.Ref "a", V.const_int ~width:12 0x100);
          };
      ]
  in
  Sim.set_input sim "a" (bv 4 0xF);
  Sim.settle_only sim;
  check_int "zero-extended add" 0x10F (Bitvec.to_int (Sim.peek sim "wide"))

let test_topological_order () =
  (* Assigns written in reverse dependency order must still settle. *)
  let sim =
    sim_of
      ~ports:[ { V.port_name = "a"; dir = V.Input; width = 8 } ]
      [
        V.Wire_decl { name = "c"; width = 8 };
        V.Assign { target = "c"; expr = V.Binop (V.Add, V.Ref "b", V.const_int ~width:8 1) };
        V.Wire_decl { name = "b"; width = 8 };
        V.Assign { target = "b"; expr = V.Binop (V.Add, V.Ref "a", V.const_int ~width:8 1) };
      ]
  in
  Sim.set_input sim "a" (bv 8 10);
  Sim.settle_only sim;
  check_int "chained" 12 (Bitvec.to_int (Sim.peek sim "c"))

let test_combinational_loop_detected () =
  match
    sim_of ~ports:[]
      [
        V.Wire_decl { name = "a"; width = 1 };
        V.Wire_decl { name = "b"; width = 1 };
        V.Assign { target = "a"; expr = V.Unop (V.Not, V.Ref "b") };
        V.Assign { target = "b"; expr = V.Unop (V.Not, V.Ref "a") };
      ]
  with
  | exception Sim.Sim_error msg -> check_bool "mentions loop" true (contains msg "loop")
  | _ -> Alcotest.fail "expected combinational loop error"

let test_loop_path_reported () =
  (* A 3-signal loop must report the full cycle path, not just one
     participant. *)
  match
    sim_of ~ports:[]
      [
        V.Wire_decl { name = "a"; width = 1 };
        V.Wire_decl { name = "b"; width = 1 };
        V.Wire_decl { name = "c"; width = 1 };
        V.Assign { target = "a"; expr = V.Unop (V.Not, V.Ref "b") };
        V.Assign { target = "b"; expr = V.Unop (V.Not, V.Ref "c") };
        V.Assign { target = "c"; expr = V.Unop (V.Not, V.Ref "a") };
      ]
  with
  | exception Sim.Sim_error msg ->
    check_bool "mentions loop" true (contains msg "loop");
    check_bool ("full path in: " ^ msg) true (contains msg "a -> b -> c -> a")
  | _ -> Alcotest.fail "expected combinational loop error"

let test_empty_concat_rejected () =
  (* An empty concatenation is a [Sim_error], not a [Failure _] crash
     out of [List.hd] — on both engines. *)
  let items =
    [
      V.Wire_decl { name = "y"; width = 4 };
      V.Assign { target = "y"; expr = V.Concat [] };
    ]
  in
  (match sim_of ~ports:[] items with
  | exception Sim.Sim_error msg ->
    check_bool "compiled names concat" true (contains msg "concatenation")
  | sim -> (
    (* The compiled engine may defer to the first settle. *)
    match Sim.settle_only sim with
    | exception Sim.Sim_error msg ->
      check_bool "compiled names concat" true (contains msg "concatenation")
    | () -> Alcotest.fail "compiled engine accepted an empty concat"));
  let flat = Flatten.flatten (design (simple_module ~ports:[] items)) in
  let r = Sim.create ~engine:`Reference flat in
  match Sim.settle_only r with
  | exception Sim.Sim_error msg ->
    check_bool "reference names concat" true (contains msg "concatenation")
  | () -> Alcotest.fail "reference engine accepted an empty concat"

(* ------------------------------------------------------------------ *)
(* Compiled engine vs reference at word-width boundaries               *)

(* One design exercising every operator class at width [w], run in
   lockstep on both engines with the same inputs; every named signal
   must agree every cycle, and the failure lists must be identical.
   Widths 1, 63, 64, 65 straddle the unboxed native-int fast path. *)
let boundary_items w =
  let wire name expr = [ V.Wire_decl { name; width = w }; V.Assign { target = name; expr } ] in
  let bit name expr = [ V.Wire_decl { name; width = 1 }; V.Assign { target = name; expr } ] in
  let a = V.Ref "a" and b = V.Ref "b" in
  List.concat
    [
      wire "sum" (V.Binop (V.Add, a, b));
      wire "diff" (V.Binop (V.Sub, a, b));
      wire "prod" (V.Binop (V.Mul, a, b));
      wire "band" (V.Binop (V.And, a, b));
      wire "bor" (V.Binop (V.Or, a, b));
      wire "bxor" (V.Binop (V.Xor, a, b));
      wire "bnot" (V.Unop (V.Not, a));
      wire "shl" (V.Binop (V.Shl, a, V.Ref "k"));
      wire "shr" (V.Binop (V.Shr, a, V.Ref "k"));
      wire "mux" (V.Ternary (V.Binop (V.Lt, a, b), a, b));
      bit "lt" (V.Binop (V.Lt, a, b));
      bit "le" (V.Binop (V.Le, a, b));
      bit "eq" (V.Binop (V.Eq, a, b));
      bit "redor" (V.Unop (V.Red_or, a));
      bit "redand" (V.Unop (V.Red_and, a));
      bit "landor" (V.Binop (V.Log_or, V.Binop (V.Log_and, a, b), V.Ref "k"));
      (if w > 1 then wire "sliced" (V.Slice (a, w - 1, 1)) else wire "sliced" a);
      [
        (* Concatenation doubles the width: crosses into the boxed
           representation exactly at w = 32..63. *)
        V.Wire_decl { name = "cat"; width = 2 * w };
        V.Assign { target = "cat"; expr = V.Concat [ a; b ] };
        V.Wire_decl { name = "cat_lo"; width = w };
        V.Assign { target = "cat_lo"; expr = V.Slice (V.Ref "cat", w - 1, 0) };
        (* Sequential state at width w, plus a memory. *)
        V.Reg_decl { name = "acc"; width = w };
        V.Mem_decl { name = "mem"; width = w; depth = 4; style = V.Style_bram };
        V.Reg_decl { name = "rd"; width = w };
        V.Always_ff
          [
            V.Nonblocking (V.Lref "acc", V.Binop (V.Add, V.Ref "acc", a));
            V.Nonblocking (V.Lindex ("mem", V.Slice (V.Ref "k", 1, 0)), V.Ref "acc");
            V.Nonblocking (V.Lref "rd", V.Index ("mem", V.const_int ~width:2 1));
            V.Assert_stmt { cond = V.Binop (V.Ne, a, b); message = "a = b" };
          ];
      ];
    ]

let boundary_values w =
  let ones = Bitvec.ones w in
  let top_bit = Bitvec.shift_left (Bitvec.one w) (w - 1) in
  let alt =
    (* 0101... pattern *)
    Bitvec.of_bin_string (String.init w (fun i -> if i mod 2 = 0 then '0' else '1'))
  in
  [| Bitvec.zero w; Bitvec.one w; ones; top_bit; alt; Bitvec.sub ones (Bitvec.one w) |]

let lockstep_boundary w () =
  let ports =
    [
      { V.port_name = "a"; dir = V.Input; width = w };
      { V.port_name = "b"; dir = V.Input; width = w };
      { V.port_name = "k"; dir = V.Input; width = 7 };
    ]
  in
  let flat = Flatten.flatten (design (simple_module ~ports (boundary_items w))) in
  let c = Sim.create ~engine:`Compiled flat in
  let o = Sim.create ~engine:`Opcode ~partitions:2 flat in
  let r = Sim.create ~engine:`Reference flat in
  let names = Sim.signal_names c in
  let values = boundary_values w in
  let n = Array.length values in
  for cyc = 0 to (n * n) - 1 do
    let va = values.(cyc mod n)
    and vb = values.(cyc / n mod n)
    and vk = Bitvec.of_int ~width:7 (cyc * 13 mod 80) in
    List.iter
      (fun (name, v) ->
        Sim.set_input c name v;
        Sim.set_input o name v;
        Sim.set_input r name v)
      [ ("a", va); ("b", vb); ("k", vk) ];
    Sim.settle_only c;
    Sim.settle_only o;
    Sim.settle_only r;
    List.iter
      (fun (name, _) ->
        let vr = Sim.peek r name in
        List.iter
          (fun (label, sim) ->
            let vc = Sim.peek sim name in
            if not (Bitvec.equal vc vr) then
              Alcotest.failf "width %d, cycle %d, signal %s: %s %s <> reference %s" w
                cyc name label (Bitvec.to_hex_string vc) (Bitvec.to_hex_string vr))
          [ ("compiled", c); ("opcode", o) ])
      names;
    Sim.clock c;
    Sim.clock o;
    Sim.clock r
  done;
  let fr = Sim.failures r in
  List.iter
    (fun fc ->
      check_int "same failure count" (List.length fr) (List.length fc);
      List.iter2
        (fun (a : Sim.assertion_failure) (b : Sim.assertion_failure) ->
          check_int "failure cycle" b.Sim.at_cycle a.Sim.at_cycle;
          check_bool "failure message" true (String.equal a.Sim.message b.Sim.message))
        fc fr)
    [ Sim.failures c; Sim.failures o ]

let test_fastpath_stats () =
  (* Narrow signals take the unboxed path; wide ones do not.  The
     event-driven settle must also actually skip quiescent assigns. *)
  let ports = [ { V.port_name = "a"; dir = V.Input; width = 8 } ] in
  let sim =
    sim_of ~ports
      [
        V.Wire_decl { name = "narrow"; width = 63 };
        V.Assign { target = "narrow"; expr = V.Ref "a" };
        V.Wire_decl { name = "wide"; width = 64 };
        V.Assign { target = "wide"; expr = V.Concat [ V.Ref "a"; V.Ref "a" ] };
        V.Wire_decl { name = "quiet"; width = 4 };
        V.Assign { target = "quiet"; expr = V.const_int ~width:4 9 };
      ]
  in
  Sim.set_input sim "a" (bv 8 1);
  Sim.settle_only sim;
  (* Second settle with nothing changed: everything should be skipped. *)
  Sim.settle_only sim;
  let s = Sim.stats sim in
  check_bool "some fast-path evals" true (s.Sim.st_fastpath_evaluated > 0);
  check_bool "some skips" true (s.Sim.st_assigns_skipped >= 3);
  (* clk + a + narrow + quiet are narrow; wide is not. *)
  check_int "narrow signals" 4 s.Sim.st_narrow_signals;
  check_int "wide signals" 1 s.Sim.st_wide_signals;
  check_int "settles" 2 s.Sim.st_settles

(* ------------------------------------------------------------------ *)
(* Sequential behaviour                                                *)

let test_register_timing () =
  let sim =
    sim_of
      ~ports:[ { V.port_name = "d"; dir = V.Input; width = 8 } ]
      [
        V.Reg_decl { name = "q"; width = 8 };
        V.Always_ff [ V.Nonblocking (V.Lref "q", V.Ref "d") ];
      ]
  in
  Sim.set_input sim "d" (bv 8 42);
  Sim.settle_only sim;
  check_int "before edge" 0 (Bitvec.to_int (Sim.peek sim "q"));
  Sim.clock sim;
  Sim.settle_only sim;
  check_int "after edge" 42 (Bitvec.to_int (Sim.peek sim "q"))

let test_nonblocking_swap () =
  (* The classic: two registers swap atomically with nonblocking
     assignments. *)
  let sim =
    sim_of ~ports:[]
      [
        V.Reg_decl { name = "a"; width = 4 };
        V.Reg_decl { name = "b"; width = 4 };
        V.Wire_decl { name = "init"; width = 1 };
        V.Assign { target = "init"; expr = V.Binop (V.Eq, V.Ref "a", V.const_int ~width:4 0) };
        V.Always_ff
          [
            V.If
              ( V.Ref "init",
                [
                  V.Nonblocking (V.Lref "a", V.const_int ~width:4 1);
                  V.Nonblocking (V.Lref "b", V.const_int ~width:4 2);
                ],
                [
                  V.Nonblocking (V.Lref "a", V.Ref "b");
                  V.Nonblocking (V.Lref "b", V.Ref "a");
                ] );
          ];
      ]
  in
  Sim.step sim;  (* init *)
  Sim.step sim;  (* swap *)
  Sim.settle_only sim;
  check_int "a took b" 2 (Bitvec.to_int (Sim.peek sim "a"));
  check_int "b took a" 1 (Bitvec.to_int (Sim.peek sim "b"))

let test_memory_read_first () =
  (* Read and write the same address in the same cycle: the read
     returns the old value (read-first BRAM). *)
  let sim =
    sim_of
      ~ports:
        [
          { V.port_name = "wdata"; dir = V.Input; width = 8 };
          { V.port_name = "we"; dir = V.Input; width = 1 };
        ]
      [
        V.Mem_decl { name = "mem"; width = 8; depth = 4; style = V.Style_bram };
        V.Reg_decl { name = "rdata"; width = 8 };
        V.Always_ff
          [
            V.If
              ( V.Ref "we",
                [ V.Nonblocking (V.Lindex ("mem", V.const_int ~width:2 1), V.Ref "wdata") ],
                [] );
            V.Nonblocking (V.Lref "rdata", V.Index ("mem", V.const_int ~width:2 1));
          ];
      ]
  in
  Sim.set_input sim "we" (bv 1 1);
  Sim.set_input sim "wdata" (bv 8 7);
  Sim.step sim;
  Sim.settle_only sim;
  check_int "read got old value" 0 (Bitvec.to_int (Sim.peek sim "rdata"));
  Sim.set_input sim "wdata" (bv 8 9);
  Sim.step sim;
  Sim.settle_only sim;
  check_int "read got first write" 7 (Bitvec.to_int (Sim.peek sim "rdata"))

let test_assertion_capture () =
  let sim =
    sim_of
      ~ports:[ { V.port_name = "bad"; dir = V.Input; width = 1 } ]
      [
        V.Always_ff
          [ V.Assert_stmt { cond = V.Unop (V.Not, V.Ref "bad"); message = "boom" } ];
      ]
  in
  Sim.step sim;
  check_int "no failure yet" 0 (List.length (Sim.failures sim));
  Sim.set_input sim "bad" (bv 1 1);
  Sim.settle_only sim;
  Sim.clock sim;
  (match Sim.failures sim with
  | [ f ] ->
    check_int "cycle recorded" 1 f.Sim.at_cycle;
    check_bool "message" true (f.Sim.message = "boom")
  | _ -> Alcotest.fail "expected exactly one failure")

(* ------------------------------------------------------------------ *)
(* Hierarchy                                                           *)

let test_flatten_hierarchy () =
  let child =
    {
      V.mod_name = "inc";
      ports =
        [
          { V.port_name = "clk"; dir = V.Input; width = 1 };
          { V.port_name = "x"; dir = V.Input; width = 8 };
          { V.port_name = "y"; dir = V.Output; width = 8 };
        ];
      items =
        [ V.Assign { target = "y"; expr = V.Binop (V.Add, V.Ref "x", V.const_int ~width:8 1) } ];
    }
  in
  let top =
    simple_module
      ~ports:
        [
          { V.port_name = "a"; dir = V.Input; width = 8 };
          { V.port_name = "out"; dir = V.Output; width = 8 };
        ]
      [
        V.Wire_decl { name = "mid"; width = 8 };
        V.Instance
          {
            module_name = "inc";
            instance_name = "u1";
            connections =
              [ ("clk", V.Ref "clk"); ("x", V.Binop (V.Add, V.Ref "a", V.const_int ~width:8 1)); ("y", V.Ref "mid") ];
          };
        V.Instance
          {
            module_name = "inc";
            instance_name = "u2";
            connections = [ ("clk", V.Ref "clk"); ("x", V.Ref "mid"); ("y", V.Ref "out") ];
          };
      ]
  in
  let sim = Sim.create (Flatten.flatten { V.modules = [ child; top ]; top = "top" }) in
  Sim.set_input sim "a" (bv 8 10);
  Sim.settle_only sim;
  (* a + 1 (expression) + 1 (u1) + 1 (u2) *)
  check_int "two instances chained" 13 (Bitvec.to_int (Sim.peek sim "out"))

(* ------------------------------------------------------------------ *)
(* Elaboration error paths                                             *)

let inc_child =
  {
    V.mod_name = "inc";
    ports =
      [
        { V.port_name = "clk"; dir = V.Input; width = 1 };
        { V.port_name = "x"; dir = V.Input; width = 8 };
        { V.port_name = "y"; dir = V.Output; width = 8 };
      ];
    items =
      [ V.Assign { target = "y"; expr = V.Binop (V.Add, V.Ref "x", V.const_int ~width:8 1) } ];
  }

let elab_fails ~needle modules =
  match Flatten.flatten { V.modules; top = "top" } with
  | _ -> Alcotest.failf "expected Elab_error mentioning %S" needle
  | exception Flatten.Elab_error msg ->
    check_bool (Printf.sprintf "message %S mentions %S" msg needle) true
      (contains msg needle)

let test_duplicate_module_rejected () =
  (* Two definitions under one name used to be resolved silently by
     "first declaration wins"; now instance resolution refuses. *)
  elab_fails ~needle:"duplicate definition of module inc"
    [ inc_child; { inc_child with V.items = [] }; simple_module [] ]

let test_unknown_module () =
  elab_fails ~needle:"unknown module ghost"
    [
      simple_module
        [ V.Instance { module_name = "ghost"; instance_name = "u"; connections = [] } ];
    ]

let test_unknown_port () =
  elab_fails ~needle:"no port nope"
    [
      inc_child;
      simple_module
        [
          V.Instance
            {
              module_name = "inc";
              instance_name = "u";
              connections = [ ("nope", V.Ref "clk") ];
            };
        ];
    ]

let test_output_port_needs_wire () =
  elab_fails ~needle:"output port y needs a plain wire"
    [
      inc_child;
      simple_module
        [
          V.Instance
            {
              module_name = "inc";
              instance_name = "u";
              connections =
                [ ("y", V.Binop (V.Add, V.Ref "clk", V.const_int ~width:8 1)) ];
            };
        ];
    ]

let test_unconnected_port_dangles () =
  (* An unconnected input becomes a dangling prefixed wire that reads
     as zero, so the child still elaborates and computes 0 + 1. *)
  let top =
    simple_module
      ~ports:[ { V.port_name = "out"; dir = V.Output; width = 8 } ]
      [
        V.Instance
          {
            module_name = "inc";
            instance_name = "u1";
            connections = [ ("clk", V.Ref "clk"); ("y", V.Ref "out") ];
          };
      ]
  in
  let flat = Flatten.flatten { V.modules = [ inc_child; top ]; top = "top" } in
  check_bool "dangling wire declared" true
    (List.exists
       (function V.Wire_decl { name = "u1__x"; width = 8 } -> true | _ -> false)
       flat.Flatten.flat_items);
  let sim = Sim.create flat in
  Sim.settle_only sim;
  check_int "dangling input reads as zero" 1 (Bitvec.to_int (Sim.peek sim "out"))

let test_prefix_collision_detected () =
  (* Instance [u1] signal [x] flattens to "u1__x"; a sibling wire
     already named "u1__x" must be a hard error, not a silent merge. *)
  elab_fails ~needle:"u1__x collides"
    [
      inc_child;
      simple_module
        [
          V.Wire_decl { name = "u1__x"; width = 8 };
          V.Instance
            {
              module_name = "inc";
              instance_name = "u1";
              connections = [ ("clk", V.Ref "clk") ];
            };
        ];
    ]

let test_prefix_collision_clean_case () =
  (* Names containing "__" are fine while they do not collide with an
     actual instance path. *)
  let top =
    simple_module
      [
        V.Wire_decl { name = "u1__other"; width = 8 };
        V.Assign { target = "u1__other"; expr = V.const_int ~width:8 5 };
        V.Instance
          {
            module_name = "inc";
            instance_name = "u1";
            connections = [ ("clk", V.Ref "clk") ];
          };
      ]
  in
  let flat = Flatten.flatten { V.modules = [ inc_child; top ]; top = "top" } in
  check_bool "clean design elaborates" true (flat.Flatten.flat_items <> [])

(* ------------------------------------------------------------------ *)
(* Pretty printer                                                      *)

let test_pretty_output () =
  let m =
    simple_module
      ~ports:[ { V.port_name = "x"; dir = V.Input; width = 8 } ]
      [
        V.Comment "hello";
        V.Reg_decl { name = "q"; width = 8 };
        V.Mem_decl { name = "mem"; width = 32; depth = 16; style = V.Style_lutram };
        V.Assign { target = "q_next"; expr = V.Binop (V.Add, V.Ref "q", V.Ref "x") };
        V.Always_ff
          [
            V.If (V.Ref "x", [ V.Nonblocking (V.Lref "q", V.Ref "x") ], []);
            V.Assert_stmt { cond = V.Ref "x"; message = "x must hold" };
          ];
      ]
  in
  let text = Pretty.module_to_string m in
  List.iter
    (fun needle -> check_bool needle true (contains text needle))
    [
      "module top (";
      "input wire clk";
      "input wire [7:0] x";
      "// hello";
      "reg [7:0] q = 0;";
      "ram_style = \"distributed\"";
      "reg [31:0] mem [0:15];";
      "assign q_next = (q + x);";
      "always @(posedge clk) begin";
      "q <= x;";
      "$error(\"x must hold\");";
      "endmodule";
    ]

(* ------------------------------------------------------------------ *)
(* VCD dumping                                                         *)

let test_vcd_dump () =
  let path = Filename.temp_file "hir_test" ".vcd" in
  let sim =
    sim_of
      ~ports:[ { V.port_name = "d"; dir = V.Input; width = 8 } ]
      [
        V.Reg_decl { name = "q"; width = 8 };
        V.Always_ff [ V.Nonblocking (V.Lref "q", V.Ref "d") ];
      ]
  in
  let vcd = Hir_rtl.Vcd.create ~path sim in
  for c = 0 to 3 do
    Sim.set_input sim "d" (bv 8 (10 * c));
    Sim.settle_only sim;
    Hir_rtl.Vcd.sample vcd sim;
    Sim.clock sim
  done;
  Hir_rtl.Vcd.close vcd;
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  List.iter
    (fun needle -> check_bool needle true (contains text needle))
    [ "$timescale"; "$var wire 8"; " d $end"; " q $end"; "#0"; "#1"; "b1010 " ]

(* Golden-trace: the opcode engine's VCD dump (slot-resolved sampling
   over its register files) must be byte-identical to the reference
   engine's dump of the same run — same signals, same ordering, same
   change timestamps. *)
let test_vcd_golden_trace () =
  let items =
    [
      V.Reg_decl { name = "q"; width = 8 };
      V.Wire_decl { name = "wide"; width = 70 };
      V.Wire_decl { name = "sum"; width = 8 };
      V.Assign { target = "sum"; expr = V.Binop (V.Add, V.Ref "q", V.Ref "d") };
      V.Assign { target = "wide"; expr = V.Concat [ V.Ref "q"; V.Ref "d"; V.Ref "q" ] };
      V.Always_ff [ V.Nonblocking (V.Lref "q", V.Ref "sum") ];
    ]
  in
  let ports = [ { V.port_name = "d"; dir = V.Input; width = 8 } ] in
  let flat = Flatten.flatten (design (simple_module ~ports items)) in
  let dump engine =
    let path = Filename.temp_file "hir_golden" ".vcd" in
    let sim = Sim.create ~engine flat in
    let vcd = Hir_rtl.Vcd.create ~path sim in
    for c = 0 to 7 do
      Sim.set_input sim "d" (bv 8 (17 * c mod 256));
      Sim.settle_only sim;
      Hir_rtl.Vcd.sample vcd sim;
      Sim.clock sim
    done;
    Hir_rtl.Vcd.close vcd;
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    text
  in
  let golden = dump `Reference in
  check_bool "golden trace is non-trivial" true (String.length golden > 100);
  check_bool "opcode VCD == reference VCD" true (String.equal (dump `Opcode) golden);
  check_bool "compiled VCD == reference VCD" true (String.equal (dump `Compiled) golden)

let () =
  Alcotest.run "rtl"
    [
      ( "combinational",
        [
          Alcotest.test_case "expression evaluation" `Quick test_expr_eval;
          Alcotest.test_case "mixed-width context" `Quick test_mixed_width_context;
          Alcotest.test_case "topological settle" `Quick test_topological_order;
          Alcotest.test_case "combinational loop" `Quick test_combinational_loop_detected;
          Alcotest.test_case "loop path reported" `Quick test_loop_path_reported;
          Alcotest.test_case "empty concat rejected" `Quick test_empty_concat_rejected;
        ] );
      ( "engine boundary widths",
        [
          Alcotest.test_case "width 1" `Quick (lockstep_boundary 1);
          Alcotest.test_case "width 63" `Quick (lockstep_boundary 63);
          Alcotest.test_case "width 64" `Quick (lockstep_boundary 64);
          Alcotest.test_case "width 65" `Quick (lockstep_boundary 65);
          Alcotest.test_case "fast-path stats" `Quick test_fastpath_stats;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "register timing" `Quick test_register_timing;
          Alcotest.test_case "nonblocking swap" `Quick test_nonblocking_swap;
          Alcotest.test_case "memory read-first" `Quick test_memory_read_first;
          Alcotest.test_case "assertion capture" `Quick test_assertion_capture;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "flatten two levels" `Quick test_flatten_hierarchy;
          Alcotest.test_case "duplicate module rejected" `Quick
            test_duplicate_module_rejected;
          Alcotest.test_case "unknown module" `Quick test_unknown_module;
          Alcotest.test_case "unknown port" `Quick test_unknown_port;
          Alcotest.test_case "output port needs wire" `Quick
            test_output_port_needs_wire;
          Alcotest.test_case "unconnected port dangles" `Quick
            test_unconnected_port_dangles;
          Alcotest.test_case "prefix collision detected" `Quick
            test_prefix_collision_detected;
          Alcotest.test_case "prefix collision clean case" `Quick
            test_prefix_collision_clean_case;
        ] );
      ("pretty", [ Alcotest.test_case "verilog text" `Quick test_pretty_output ]);
      ( "vcd",
        [
          Alcotest.test_case "waveform dump" `Quick test_vcd_dump;
          Alcotest.test_case "golden trace across engines" `Quick test_vcd_golden_trace;
        ] );
    ]
