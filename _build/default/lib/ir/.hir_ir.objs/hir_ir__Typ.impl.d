lib/ir/typ.ml: Format List
